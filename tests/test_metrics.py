"""Metrics accumulator and RunResult."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import units
from repro.sim.metrics import CpuUtil, MetricsAccumulator


def feed(acc: MetricsAccumulator, seconds: float, rate_per_flow: float,
         dt: float = 0.01, retr: float = 0.0, cpu=(0.5, 0.1, 0.8, 0.2)):
    n = acc.n_flows
    for _ in range(int(round(seconds / dt))):
        acc.record_tick(
            dt,
            np.full(n, rate_per_flow * dt),
            retr,
            0,
            cpu,
            zc_fraction=0.5,
        )


class TestOmit:
    def test_omit_window_excluded(self):
        acc = MetricsAccumulator(n_flows=1, duration=10.0, omit=2.0)
        # 2 s at high rate inside the omit window, then 8 s at low rate
        feed(acc, 2.0, rate_per_flow=1e9)
        feed(acc, 8.0, rate_per_flow=1e6)
        res = acc.finalize()
        assert res.per_flow_goodput[0] == pytest.approx(1e6, rel=0.02)

    def test_retransmits_in_omit_not_counted(self):
        acc = MetricsAccumulator(1, 10.0, 2.0)
        feed(acc, 2.0, 1e6, retr=100.0)
        feed(acc, 8.0, 1e6, retr=1.0)
        res = acc.finalize()
        assert res.retransmit_segments == pytest.approx(8.0 / 0.01 * 1.0)


class TestAggregation:
    def test_total_and_per_flow(self):
        acc = MetricsAccumulator(4, 5.0, 1.0)
        feed(acc, 5.0, 2e8)
        res = acc.finalize()
        assert res.total_goodput == pytest.approx(8e8, rel=0.01)
        assert res.total_gbps == pytest.approx(units.to_gbps(8e8), rel=0.01)
        lo, hi = res.flow_range_gbps
        assert lo == pytest.approx(hi)

    def test_cpu_util_time_average(self):
        acc = MetricsAccumulator(1, 5.0, 1.0)
        feed(acc, 5.0, 1e6, cpu=(0.5, 0.25, 0.0, 0.0))
        res = acc.finalize()
        assert res.sender_cpu.app_pct == pytest.approx(50.0, rel=0.01)
        assert res.sender_cpu.irq_pct == pytest.approx(25.0, rel=0.01)
        assert res.sender_cpu.total_pct == pytest.approx(75.0, rel=0.01)

    def test_interval_samples_roughly_per_second(self):
        acc = MetricsAccumulator(1, 10.0, 2.0)
        feed(acc, 10.0, 1e8)
        res = acc.finalize()
        assert 6 <= res.interval_goodput.size <= 9
        assert np.allclose(res.interval_goodput, 1e8, rtol=0.05)

    def test_zc_fraction_mean(self):
        acc = MetricsAccumulator(1, 4.0, 1.0)
        feed(acc, 4.0, 1e6)
        assert acc.finalize().zc_fraction_mean == pytest.approx(0.5, rel=0.01)


class TestCpuUtil:
    def test_total_can_exceed_100(self):
        u = CpuUtil(app_pct=95.0, irq_pct=40.0)
        assert u.total_pct == pytest.approx(135.0)


class TestClosedFormClock:
    def test_million_ticks_no_drift_no_epsilon(self):
        """Regression for the `now += dt` clock-drift bug: a million
        repeated float adds of dt=1e-4 drift the clock by ~1e-9 s,
        enough to flip the omit-boundary comparison by a whole tick.
        The accumulator derives its clocks as closed forms (ticks*dt),
        so every assertion below is EXACT equality — no epsilon."""
        dt = 1e-4
        acc = MetricsAccumulator(n_flows=1, duration=100.0, omit=50.0)
        delivered = np.array([10.0])  # bytes per tick
        for _ in range(1_000_000):
            acc.record_tick(dt, delivered, 0.0, 0, (0.0, 0.0, 0.0, 0.0), 0.0)
        # Exactly half the ticks fall inside the omit window: the tick
        # ending at t = 500000 * 1e-4 lands on exactly 50.0.
        assert acc._measured_ticks == 500_000
        assert acc._measured_time == 50.0
        assert acc._time == 100.0
        res = acc.finalize()
        # 500000 exact adds of 10.0 bytes over exactly 50 s.
        assert res.per_flow_goodput[0] == 1e5
