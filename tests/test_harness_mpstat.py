"""Test harness aggregation and mpstat rendering."""

from __future__ import annotations

import pytest

from repro.core.errors import HarnessError
from repro.host.numa import CorePlacement
from repro.sim.metrics import CpuUtil
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options
from repro.tools.mpstat import MpstatReport


@pytest.fixture(scope="module")
def harness():
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    return TestHarness(
        snd, rcv, tb.path("lan"),
        HarnessConfig(repetitions=3, duration=6.0, omit=1.5, tick=0.004),
    )


class TestHarnessRuns:
    def test_repetition_count(self, harness):
        res = harness.run(Iperf3Options())
        assert len(res.runs) == 3
        assert res.gbps_values.size == 3

    def test_stats_consistent(self, harness):
        res = harness.run(Iperf3Options())
        assert res.min_gbps <= res.mean_gbps <= res.max_gbps
        assert res.stdev_gbps >= 0

    def test_reps_actually_vary(self, harness):
        res = harness.run(Iperf3Options())
        assert res.max_gbps > res.min_gbps

    def test_table_row_shape(self, harness):
        row = harness.run(Iperf3Options(), label="unpaced").table_row()
        assert set(row) == {"config", "avg_gbps", "retr", "min", "max", "stdev"}
        assert row["config"] == "unpaced"

    def test_run_matrix(self, harness):
        results = harness.run_matrix([
            ("a", Iperf3Options()),
            ("b", Iperf3Options(fq_rate_gbps=10)),
        ])
        assert [r.label for r in results] == ["a", "b"]

    def test_config_overrides_duration(self, harness):
        res = harness.run(Iperf3Options(duration=9999))
        assert res.runs[0].run.duration == pytest.approx(6.0)

    def test_per_flow_range(self, harness):
        res = harness.run(Iperf3Options(parallel=4, fq_rate_gbps=5))
        lo, hi = res.per_flow_range_gbps
        assert lo == pytest.approx(5.0, rel=0.05)
        assert hi == pytest.approx(5.0, rel=0.05)

    def test_bad_config(self):
        with pytest.raises(HarnessError):
            HarnessConfig(repetitions=0)

    def test_paper_protocol(self):
        cfg = HarnessConfig.paper()
        assert cfg.repetitions >= 10 and cfg.duration == 60.0


class TestMpstat:
    def placement(self):
        tb = AmLightTestbed()
        snd, _ = tb.host_pair()
        return CorePlacement.paper_pinned(snd.numa)

    def test_single_stream_core_distribution(self):
        rep = MpstatReport(
            host_name="snd", side="sender",
            util=CpuUtil(app_pct=90.0, irq_pct=30.0),
            placement=self.placement(), active_flows=1,
        )
        samples = rep.per_core()
        busy_app = [s for s in samples if s.role == "app" and s.busy_pct > 0]
        busy_irq = [s for s in samples if s.role == "irq" and s.busy_pct > 0]
        assert len(busy_app) == 1 and busy_app[0].core == 8
        assert len(busy_irq) == 1
        assert rep.tx_rx_cores_pct == pytest.approx(120.0)

    def test_multi_stream_spreads_cores(self):
        rep = MpstatReport(
            host_name="snd", side="sender",
            util=CpuUtil(app_pct=60.0, irq_pct=10.0),
            placement=self.placement(), active_flows=8,
        )
        busy_app = [s for s in rep.per_core() if s.role == "app" and s.busy_pct > 0]
        assert len(busy_app) == 8

    def test_render(self):
        rep = MpstatReport(
            host_name="snd", side="sender",
            util=CpuUtil(app_pct=90.0, irq_pct=30.0),
            placement=self.placement(), active_flows=1,
        )
        text = rep.render()
        assert "TX/RX cores 120%" in text
        assert "CPU 8" in text
