"""Shard-count byte parity for the sharded massive-flow simulator.

The sharded engine's contract (``repro.sim.shard``) is not "close": a
campaign's numbers are *byte-identical* for every shard count and both
transports — same :class:`RunResult` numbers, same
``ExperimentResult.digest()``, and the same-seed trace streams must
match event for event.  The anchors are blockwise reductions in fixed
global order plus the fixed block→RNG-stream mapping; these tests pin
the contract on fixed configurations covering the engine's branches
(mixed congestion control with losses, all-smooth pacing, 802.3x flow
control, pad lanes, single-block clamping), on hypothesis-generated
populations, and on a registered experiment's digest through the
runner's ``--shards`` plumbing.

Partitioning/population semantics and selection plumbing (env var,
programmatic override, validation errors) are covered at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSpec, SimProfile
from repro.sim.shard import (
    BLOCK_FLOWS,
    ENV_VAR,
    FlowPopulation,
    ShardedFlowSimulator,
    ShardPlan,
    force_shards,
    forced_shards,
    shard_count,
)
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.trace.bus import ListSink, TraceBus, tracing

PROFILE = SimProfile(duration=2.0, tick=0.008, omit=0.5)


def run_traced(hosts, path, flows, seed, shards, mode="inproc", profile=PROFILE):
    """One traced sharded run at an explicit shard count/transport."""
    snd, rcv = hosts
    sink = ListSink()
    with tracing(TraceBus(sinks=[sink])):
        sim = ShardedFlowSimulator(
            snd, rcv, path, flows, profile, RngFactory(seed),
            shards=shards, mode=mode,
        )
        res = sim.run()
    return res, sink.events


def assert_bit_identical(case_a, case_b):
    """Full-result and full-trace equality, no tolerances anywhere."""
    ra, ea = case_a
    rb, eb = case_b
    assert np.array_equal(ra.per_flow_goodput, rb.per_flow_goodput)
    assert np.array_equal(ra.interval_goodput, rb.interval_goodput)
    assert ra.retransmit_segments == rb.retransmit_segments
    assert ra.loss_events == rb.loss_events
    assert ra.sender_cpu == rb.sender_cpu
    assert ra.receiver_cpu == rb.receiver_cpu
    assert ra.zc_fraction_mean == rb.zc_fraction_mean
    assert ea == eb


def _amlight_case(path, flows, seed):
    tb = AmLightTestbed(kernel="6.8")
    return tb.host_pair(), tb.path(path), flows, seed


#: Fixed configurations covering the sharded engine's branchy corners.
CASES = {
    # Mixed CC batch groups with losses on a lossy WAN: the general
    # case — 3 blocks, reductions crossing every exchange column.
    "mixed-cc-wan": _amlight_case(
        "wan54",
        FlowPopulation.of(
            [FlowSpec(cc="cubic")] * 40
            + [FlowSpec(cc="reno")] * 24
            + [FlowSpec(cc="cubic", zerocopy=True, skip_rx_copy=True)] * 16
            + [FlowSpec(cc="cubic").with_pacing_gbps(4.0)] * 16
        ),
        7,
    ),
    # Every flow fq-paced: the all-smooth fast path (no trains, no
    # per-tick weight draws) must stay smooth under any partition.
    "all-smooth": _amlight_case(
        "wan25",
        FlowPopulation.uniform(
            FlowSpec(zerocopy=True, skip_rx_copy=True).with_pacing_gbps(1.2),
            64,
        ),
        3,
    ),
    # Pad lanes: 100 flows leave 28 dead lanes in the last block, owned
    # by the last shard only at some partitions.
    "padded-zc": _amlight_case(
        "wan104",
        FlowPopulation.uniform(FlowSpec(zerocopy=True, skip_rx_copy=True), 100),
        11,
    ),
    # Fewer flows than one block: every shard request clamps to 1.
    "single-block": _amlight_case(
        "lan", FlowPopulation.uniform(FlowSpec(), 16), 5
    ),
    # The congestion-control zoo: every template-batchable stepper
    # (incl. a parameterized tunable-cubic kind) split across shard
    # boundaries, so per-kind groups exist in several shards at once.
    "cc-zoo": _amlight_case(
        "wan54",
        FlowPopulation.of(
            [FlowSpec(cc="highspeed")] * 18
            + [FlowSpec(cc="htcp")] * 18
            + [FlowSpec(cc="scalable")] * 18
            + [FlowSpec(cc="westwood")] * 18
            + [FlowSpec(cc="tunable-cubic:alpha=1.5,beta=0.5")] * 18
            + [FlowSpec(cc="cubic")] * 10
        ),
        23,
    ),
}


class TestFixedConfigParity:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_inproc_shard_counts_bit_identical(self, name):
        hosts, path, flows, seed = CASES[name]
        base = run_traced(hosts, path, flows, seed, shards=1)
        for shards in (2, 4):
            other = run_traced(hosts, path, flows, seed, shards=shards)
            assert_bit_identical(base, other)

    @pytest.mark.parametrize("name", ["mixed-cc-wan", "padded-zc"])
    def test_process_transport_bit_identical(self, name):
        hosts, path, flows, seed = CASES[name]
        base = run_traced(hosts, path, flows, seed, shards=1)
        procs = run_traced(hosts, path, flows, seed, shards=4, mode="process")
        assert_bit_identical(base, procs)

    def test_flow_control_path_parity(self):
        """802.3x pause frames (ESnet production DTNs) — the branch
        where ring overflow becomes backpressure, not loss."""
        tb = ESnetTestbed(kernel="6.8")
        hosts = tb.production_host_pair()
        pop = FlowPopulation.uniform(FlowSpec(), 40)
        base = run_traced(hosts, tb.production_path(), pop, 3, shards=1)
        other = run_traced(
            hosts, tb.production_path(), pop, 3, shards=3, mode="process"
        )
        assert_bit_identical(base, other)


spec_strategy = st.builds(
    FlowSpec,
    zerocopy=st.booleans(),
    skip_rx_copy=st.booleans(),
    cc=st.sampled_from(
        ["cubic", "reno", "highspeed", "htcp", "scalable", "westwood"]
    ),
)

population_strategy = st.lists(
    st.tuples(spec_strategy, st.integers(min_value=1, max_value=40)),
    min_size=1,
    max_size=4,
).map(lambda groups: FlowPopulation(groups=tuple(groups)))


class TestHypothesisParity:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        population=population_strategy,
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shards=st.integers(min_value=2, max_value=6),
        path=st.sampled_from(["wan54", "lan"]),
    )
    def test_random_populations_bit_identical(
        self, population, seed, shards, path
    ):
        tb = AmLightTestbed(kernel="6.8")
        short = SimProfile(duration=1.0, tick=0.008, omit=0.25)
        base = run_traced(
            tb.host_pair(), tb.path(path), population, seed, 1, profile=short
        )
        other = run_traced(
            tb.host_pair(), tb.path(path), population, seed, shards,
            profile=short,
        )
        assert_bit_identical(base, other)


def _small_config():
    """Small but branch-covering fidelity for the experiment checks:
    every N cell of scale-flows runs, with tick-scale windows."""
    from repro.tools.harness import HarnessConfig

    return HarnessConfig(
        repetitions=1, duration=1.5, omit=0.5, tick=0.008, seed=99
    )


class TestExperimentDigestParity:
    def test_scale_flows_digest_identical_across_shards(self):
        """End-to-end through the runner: the CI ``--shards`` contract."""
        from repro.runner import RunnerConfig, run_experiments

        digests = {}
        for shards in (1, 2, 4):
            report = run_experiments(
                ["scale-flows"],
                config=_small_config(),
                runner=RunnerConfig(jobs=1, use_cache=False, shards=shards),
            )
            (result,) = report.results
            digests[shards] = result.digest()
        assert digests[1] == digests[2] == digests[4]

    def test_cached_one_shard_result_serves_any_shard_count(self, tmp_path):
        """``TaskSpec.shards`` is absent from the cache key on purpose:
        shard-invariance means a 1-shard payload *is* the 4-shard one."""
        from repro.runner import RunnerConfig, run_experiments

        cold = run_experiments(
            ["scale-flows"],
            config=_small_config(),
            runner=RunnerConfig(jobs=1, cache_dir=tmp_path, shards=1),
        )
        assert cold.executed == 1
        warm = run_experiments(
            ["scale-flows"],
            config=_small_config(),
            runner=RunnerConfig(jobs=1, cache_dir=tmp_path, shards=4),
        )
        assert warm.all_cached
        assert warm.results[0].digest() == cold.results[0].digest()


class TestPartitioning:
    def test_plan_covers_all_blocks_contiguously(self):
        plan = ShardPlan.build(1000, 7)
        assert plan.n_pad == plan.n_blocks * BLOCK_FLOWS >= plan.n
        assert plan.bounds[0] == 0 and plan.bounds[-1] == plan.n_blocks
        spans = [
            plan.block_range(s) for s in range(plan.shards)
        ]
        assert all(b0 < b1 for b0, b1 in spans)
        assert [b0 for b0, _ in spans[1:]] == [b1 for _, b1 in spans[:-1]]

    def test_plan_clamps_shards_to_blocks(self):
        assert ShardPlan.build(16, 8).shards == 1
        assert ShardPlan.build(64, 8).shards == 2
        assert ShardPlan.build(10_000, 4).shards == 4

    def test_population_merges_adjacent_equal_specs(self):
        pop = FlowPopulation.of([FlowSpec()] * 3 + [FlowSpec(cc="reno")] * 2)
        assert pop.n == 5
        assert len(pop.groups) == 2

    def test_population_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FlowPopulation.of([])
        with pytest.raises(ConfigurationError):
            FlowPopulation(groups=((FlowSpec(), 0),))

    def test_simulator_rejects_scalar_state_cc(self):
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        with pytest.raises(ConfigurationError):
            ShardedFlowSimulator(
                snd, rcv, tb.path("lan"),
                FlowPopulation.uniform(FlowSpec(cc="bbr3"), 8),
            )

    def test_simulator_rejects_unknown_mode_and_bad_shards(self):
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        pop = FlowPopulation.uniform(FlowSpec(), 8)
        with pytest.raises(ConfigurationError):
            ShardedFlowSimulator(snd, rcv, tb.path("lan"), pop, mode="thread")
        with pytest.raises(ConfigurationError):
            ShardedFlowSimulator(snd, rcv, tb.path("lan"), pop, shards=0)


class TestSelection:
    def test_default_is_one_shard(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        force_shards(None)
        assert shard_count() == 1

    def test_env_var_selects_count(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "4")
        force_shards(None)
        assert shard_count() == 4

    def test_env_var_rejects_garbage(self, monkeypatch):
        force_shards(None)
        for raw in ("zero", "0", "-2"):
            monkeypatch.setenv(ENV_VAR, raw)
            with pytest.raises(ConfigurationError):
                shard_count()

    def test_force_shards_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            force_shards(0)

    def test_forced_shards_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        force_shards(None)
        with forced_shards(3):
            assert shard_count() == 3
            with forced_shards(5):
                assert shard_count() == 5
            assert shard_count() == 3
        assert shard_count() == 1
