"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_iperf3_defaults(self):
        args = build_parser().parse_args(["iperf3"])
        assert args.testbed == "amlight" and args.parallel == 1

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig05", "--paper"])
        assert args.exp_id == "fig05" and args.paper


class TestIperf3Command:
    def test_text_output(self, capsys):
        rc = main([
            "iperf3", "--path", "lan", "-t", "6",
            "--zerocopy", "--fq-rate", "30",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Gbits/sec" in out
        assert "--zerocopy=z" in out

    def test_json_output(self, capsys):
        rc = main(["iperf3", "--path", "lan", "-t", "6", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["end"]["sum_sent"]["bits_per_second"] > 0

    def test_esnet_testbed(self, capsys):
        rc = main(["iperf3", "--testbed", "esnet", "--path", "wan", "-t", "6"])
        assert rc == 0

    def test_unknown_path_is_clean_error(self, capsys):
        rc = main(["iperf3", "--path", "wan999", "-t", "6"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestExperimentCommand:
    def test_list(self, capsys):
        rc = main(["experiment"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig05" in out and "tab3" in out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "fig99"])
        assert rc == 2

    def test_run_and_markdown(self, capsys, tmp_path, monkeypatch):
        # shrink the config for test speed
        import repro.cli as cli
        from repro.tools.harness import HarnessConfig

        monkeypatch.setattr(
            HarnessConfig, "bench",
            classmethod(lambda cls: HarnessConfig(
                repetitions=2, duration=6.0, omit=1.5, tick=0.005)),
        )
        md = tmp_path / "out.md"
        rc = main(["experiment", "fig12", "--markdown", str(md)])
        assert rc == 0
        assert "Figure 12" in capsys.readouterr().out
        assert md.read_text().startswith("### fig12")


class TestSanitizeFlag:
    @pytest.fixture(autouse=True)
    def _restore(self):
        from repro.sim import sanitizer

        yield
        sanitizer.reset()

    def test_iperf3_sanitize_enables_and_runs(self, capsys):
        from repro.sim import sanitizer

        rc = main(["iperf3", "--path", "lan", "-t", "6", "--sanitize"])
        assert rc == 0
        assert sanitizer.enabled()
        assert "Gbits/sec" in capsys.readouterr().out

    def test_experiment_parser_accepts_sanitize(self):
        args = build_parser().parse_args(["experiment", "fig05", "--sanitize"])
        assert args.sanitize

    def test_lint_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.fmt == "text" and not args.list_rules


class TestAdviseCommand:
    def test_tuned_host(self, capsys):
        rc = main(["advise", "--path", "wan104", "--target", "50"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "optmem_max" in out

    def test_stock_host(self, capsys):
        rc = main(["advise", "--stock", "--kernel", "5.15", "--path", "wan54"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[required" in out
        assert "irqbalance" in out

    def test_esnet_production_streams(self, capsys):
        rc = main(["advise", "--testbed", "esnet", "--path", "wan",
                   "--streams", "8"])
        assert rc == 0


class TestRunCommand:
    @pytest.fixture(autouse=True)
    def fast_profiles(self, monkeypatch):
        from repro.tools.harness import HarnessConfig

        fast = HarnessConfig(repetitions=1, duration=3.0, omit=1.0, tick=0.01)
        monkeypatch.setattr(HarnessConfig, "quick",
                            classmethod(lambda cls: fast))
        monkeypatch.setattr(HarnessConfig, "bench",
                            classmethod(lambda cls: fast))

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "--all", "-j", "4"])
        assert args.all and args.jobs == 4
        assert args.profile == "bench" and not args.no_cache
        assert args.cache_dir is None and not args.expect_cached

    def test_no_ids_lists_experiments(self, capsys):
        rc = main(["run"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig05" in out and "repro run --all" in out

    def test_unknown_id_is_clean_error(self, capsys):
        rc = main(["run", "fig99"])
        assert rc == 2
        assert "fig99" in capsys.readouterr().err

    def test_cold_then_warm_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        rc = main(["run", "var", "--cache-dir", str(cache)])
        assert rc == 0
        cold = capsys.readouterr().out
        assert "ran in" in cold and "1 executed, 0 cached" in cold

        rc = main(["run", "var", "--cache-dir", str(cache),
                   "--expect-cached"])
        assert rc == 0
        warm = capsys.readouterr().out
        assert "0 executed, 1 cached" in warm
        # same digest either way — the cache changes nothing
        def digests(out):
            return [l.split("digest ")[1] for l in out.splitlines()
                    if "digest" in l]
        assert digests(cold) == digests(warm)

    def test_expect_cached_fails_cold(self, capsys, tmp_path):
        rc = main(["run", "var", "--cache-dir", str(tmp_path / "c"),
                   "--expect-cached"])
        assert rc == 1
        assert "warm cache" in capsys.readouterr().err

    def test_no_cache_bypasses_store(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        rc = main(["run", "var", "--no-cache", "--cache-dir", str(cache)])
        assert rc == 0
        assert not cache.exists()

    def test_markdown_output(self, capsys, tmp_path):
        md = tmp_path / "out.md"
        rc = main(["run", "var", "--no-cache", "--markdown", str(md)])
        assert rc == 0
        assert md.read_text().startswith("### var")
