"""Pacing config (incl. the uint32 overflow) and the zerocopy model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_BEST_WAN, OPTMEM_DEFAULT
from repro.tcp.pacing import UINT32_MAX_BYTES, PacingConfig
from repro.tcp.zerocopy import DEFAULT_SEND_BLOCK, NOTIF_BYTES, ZerocopyModel


class TestPacing:
    def test_unpaced(self):
        p = PacingConfig.unpaced()
        assert not p.enabled and p.effective_rate() is None
        assert p.burst_slack == 1.0

    def test_patched_rate_exact(self):
        p = PacingConfig.fq_rate_gbps(50)
        assert p.effective_rate() == pytest.approx(units.gbps(50))
        assert p.burst_slack == 0.0

    def test_unpatched_wraps_above_34g(self):
        """SO_MAX_PACING_RATE is bytes/s; uint32 caps at ~34.4 Gbps."""
        p = PacingConfig.fq_rate_gbps(50, patched=False)
        eff = p.effective_rate()
        assert eff == pytest.approx(units.gbps(50) - UINT32_MAX_BYTES)
        assert units.to_gbps(eff) == pytest.approx(15.6, abs=0.2)

    def test_unpatched_below_threshold_fine(self):
        p = PacingConfig.fq_rate_gbps(30, patched=False)
        assert p.effective_rate() == pytest.approx(units.gbps(30))

    @given(st.floats(min_value=0.1, max_value=400.0))
    def test_effective_never_exceeds_requested(self, gbps_value):
        for patched in (True, False):
            p = PacingConfig.fq_rate_gbps(gbps_value, patched=patched)
            eff = p.effective_rate()
            if eff is None:
                # Only the wrap-to-exactly-zero corner disables pacing.
                assert not patched
                assert units.gbps(gbps_value) % UINT32_MAX_BYTES == 0
            else:
                assert eff <= units.gbps(gbps_value) + 1e-6

    @given(st.floats(min_value=1.0, max_value=1e13))
    def test_unpatched_is_true_uint32_mod(self, rate):
        """effective_rate() is exactly ``rate % 2**32`` — with the
        wrap-to-zero corner reported as pacing-disabled, not clamped."""
        p = PacingConfig(requested_bytes_per_sec=rate, patched_uint64=False)
        expected = rate % UINT32_MAX_BYTES
        if expected == 0:
            assert p.effective_rate() is None
        else:
            assert p.effective_rate() == expected

    @given(st.integers(min_value=1, max_value=2**20))
    def test_exact_multiple_of_2_32_reverts_to_unpaced(self, k):
        """fq-rate k*2^32 wraps to SO_MAX_PACING_RATE 0: pacing is
        *disabled* (line-rate bursts), not clamped to uint32-max."""
        rate = float(k) * UINT32_MAX_BYTES
        p = PacingConfig(requested_bytes_per_sec=rate, patched_uint64=False)
        assert p.effective_rate() is None
        assert not p.enabled
        assert not p.smooths_bursts
        assert p.burst_slack == 1.0
        # The patched tool is immune at the same rate.
        fixed = PacingConfig(requested_bytes_per_sec=rate)
        assert fixed.effective_rate() == rate

    def test_describe_wrap_to_zero(self):
        rate = float(UINT32_MAX_BYTES)
        p = PacingConfig(requested_bytes_per_sec=rate, patched_uint64=False)
        assert "WRAPPED to unpaced" in p.describe()

    def test_fq_codel_coarse_pacing(self):
        p = PacingConfig.fq_rate_gbps(10, qdisc="fq_codel")
        assert not p.smooths_bursts
        assert 0 < p.burst_slack < 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PacingConfig(requested_bytes_per_sec=-1)
        with pytest.raises(ConfigurationError):
            PacingConfig(qdisc="htb")

    def test_describe_flags_the_wrap(self):
        text = PacingConfig.fq_rate_gbps(50, patched=False).describe()
        assert "WRAPPED" in text
        assert "WRAPPED" not in PacingConfig.fq_rate_gbps(50).describe()


class TestZerocopyModel:
    def test_paper_back_solve(self):
        """3.25 MB optmem covers 104 ms x ~47 Gbps with 128 KB sends —
        the paper's empirically-best value."""
        zc = ZerocopyModel(optmem_max=OPTMEM_BEST_WAN)
        need = zc.required_optmem(rate=units.gbps(50), rtt=0.104)
        assert need == pytest.approx(OPTMEM_BEST_WAN, rel=0.03)

    def test_default_optmem_covers_almost_nothing(self):
        zc = ZerocopyModel(optmem_max=OPTMEM_DEFAULT)
        # ~30 pending sends -> under 4 MB coverable
        assert zc.max_inflight_bytes < 4.2e6

    def test_zc_fraction_lan_is_one(self):
        zc = ZerocopyModel(optmem_max=OPTMEM_1MB)
        assert zc.zc_fraction(rate=units.gbps(50), rtt=0.0002) == 1.0

    def test_zc_fraction_long_wan_partial(self):
        zc = ZerocopyModel(optmem_max=OPTMEM_1MB)
        frac = zc.zc_fraction(rate=units.gbps(50), rtt=0.104)
        assert 0.1 < frac < 0.6

    @given(
        st.floats(min_value=1e5, max_value=5e10),
        st.floats(min_value=1e-4, max_value=0.3),
    )
    def test_fraction_bounds(self, rate, rtt):
        zc = ZerocopyModel(optmem_max=OPTMEM_1MB)
        assert 0.0 <= zc.zc_fraction(rate, rtt) <= 1.0

    @given(st.floats(min_value=1e6, max_value=5e10))
    def test_fraction_monotone_in_rtt(self, rate):
        zc = ZerocopyModel(optmem_max=OPTMEM_1MB)
        assert zc.zc_fraction(rate, 0.025) >= zc.zc_fraction(rate, 0.104)

    @given(st.integers(min_value=1024, max_value=2**25))
    def test_more_optmem_never_hurts(self, optmem):
        small = ZerocopyModel(optmem_max=optmem)
        big = ZerocopyModel(optmem_max=optmem * 2)
        rate, rtt = units.gbps(40), 0.054
        assert big.zc_fraction(rate, rtt) >= small.zc_fraction(rate, rtt)

    def test_custom_notif_bytes(self):
        cheap = ZerocopyModel(optmem_max=OPTMEM_1MB, notif_bytes=350.0)
        dear = ZerocopyModel(optmem_max=OPTMEM_1MB, notif_bytes=NOTIF_BYTES)
        assert cheap.max_pending_sends > dear.max_pending_sends

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZerocopyModel(optmem_max=0)
        with pytest.raises(ConfigurationError):
            ZerocopyModel(optmem_max=1, send_block_bytes=0)

    def test_describe(self):
        text = ZerocopyModel(optmem_max=OPTMEM_1MB).describe(units.gbps(40), 0.054)
        assert "pending sends" in text
