"""Max-min fair allocation properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.bottleneck import maxmin_allocate

caps_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e10, allow_nan=False),
    min_size=1,
    max_size=16,
).map(np.array)


class TestBasics:
    def test_unconstrained_gives_caps(self):
        caps = np.array([1.0, 2.0, 3.0])
        alloc = maxmin_allocate(caps, capacity=100.0)
        assert np.allclose(alloc, caps)

    def test_equal_split_when_capacity_binds(self):
        caps = np.array([10.0, 10.0, 10.0])
        alloc = maxmin_allocate(caps, capacity=15.0)
        assert np.allclose(alloc, 5.0)

    def test_waterfilling_redistributes(self):
        caps = np.array([2.0, 10.0, 10.0])
        alloc = maxmin_allocate(caps, capacity=12.0)
        # flow 0 capped at 2, the remaining 10 split equally
        assert np.allclose(alloc, [2.0, 5.0, 5.0])

    def test_zero_capacity(self):
        alloc = maxmin_allocate(np.array([5.0, 5.0]), capacity=0.0)
        assert np.allclose(alloc, 0.0)

    def test_empty(self):
        assert maxmin_allocate(np.array([]), 10.0).size == 0

    def test_weighted_shares(self):
        caps = np.array([100.0, 100.0])
        alloc = maxmin_allocate(caps, 30.0, weights=np.array([2.0, 1.0]))
        assert np.allclose(alloc, [20.0, 10.0])

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            maxmin_allocate(np.array([1.0]), 1.0, weights=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            maxmin_allocate(np.array([1.0]), 1.0, weights=np.array([0.0]))


class TestProperties:
    @given(caps_strategy, st.floats(min_value=0, max_value=1e11))
    def test_feasibility(self, caps, capacity):
        alloc = maxmin_allocate(caps, capacity)
        assert np.all(alloc <= caps + 1e-6)
        assert alloc.sum() <= capacity + 1e-3
        assert np.all(alloc >= 0)

    @given(caps_strategy, st.floats(min_value=1e3, max_value=1e11))
    def test_work_conserving(self, caps, capacity):
        """Either the capacity is exhausted or every flow got its cap."""
        alloc = maxmin_allocate(caps, capacity)
        slack_capacity = capacity - alloc.sum()
        all_capped = np.all(alloc >= caps - max(1e-6, 1e-9 * caps.max()))
        assert all_capped or slack_capacity <= max(1e-3, capacity * 1e-9)

    @given(caps_strategy, st.floats(min_value=1e3, max_value=1e11))
    def test_maxmin_fairness(self, caps, capacity):
        """No flow can gain without a lower-allocated flow losing: any
        flow below its cap holds one of the maximal allocations."""
        alloc = maxmin_allocate(caps, capacity)
        below_cap = alloc < caps - 1e-6
        if below_cap.any():
            top = alloc.max()
            assert np.all(alloc[below_cap] >= top - max(1e-6, top * 1e-9))

    @given(caps_strategy, st.floats(min_value=1e3, max_value=1e11))
    def test_symmetric_flows_equal(self, caps, capacity):
        equal_caps = np.full_like(caps, caps.max() if caps.size else 1.0)
        alloc = maxmin_allocate(equal_caps, capacity)
        if alloc.size > 1:
            assert np.allclose(alloc, alloc[0])
