"""Chart rendering and sweep utilities."""

from __future__ import annotations

import pytest

from repro.analysis.charts import BarChart, chart_from_result
from repro.analysis.sweep import sweep1d, sweep2d
from repro.experiments.base import ExperimentResult


class TestBarChart:
    def mk(self):
        return BarChart(
            title="demo",
            value_label="Gbps",
            bars=[
                ("lan", "default", 52.0, 0.5),
                ("lan", "zc+pace", 50.0, 0.1),
                ("wan54", "default", 35.0, 0.4),
                ("wan54", "zc+pace", 50.0, 0.2),
            ],
        )

    def test_render_structure(self):
        text = self.mk().render()
        assert "demo" in text
        assert "lan:" in text and "wan54:" in text
        assert text.count("█") > 20
        assert "52.0 Gbps" in text

    def test_bigger_value_longer_bar(self):
        lines = self.mk().render().splitlines()
        bar_35 = next(l for l in lines if "35.0" in l)
        bar_52 = next(l for l in lines if "52.0" in l)
        assert bar_52.count("█") > bar_35.count("█")

    def test_empty(self):
        assert "(no data)" in BarChart("t", "x", []).render()

    def test_from_result(self):
        r = ExperimentResult("fig05", "t", "Figure 5", ["path", "config", "gbps", "stdev"])
        r.add_row(path="lan", config="default", gbps=52.0, stdev=0.5)
        chart = chart_from_result(r, "path", "config")
        assert "Figure 5" in chart.title
        assert chart.bars[0] == ("lan", "default", 52.0, 0.5)


class TestSweep:
    def test_sweep1d(self):
        res = sweep1d("s", "x", [1, 2, 3], lambda x: {"y": float(x * x)})
        assert res.column("x") == [1, 2, 3]
        assert res.column("y") == [1.0, 4.0, 9.0]
        assert res.best("y").params["x"] == 3
        assert res.best("y", maximize=False).params["x"] == 1

    def test_sweep2d_cross_product(self):
        res = sweep2d("s", "a", [1, 2], "b", [10, 20, 30],
                      lambda a, b: {"sum": float(a + b)})
        assert len(res.points) == 6
        assert res.best("sum").metrics["sum"] == 32.0

    def test_render(self):
        res = sweep1d("optmem sweep", "optmem", [20480, 1048576],
                      lambda optmem: {"gbps": optmem / 1e6})
        text = res.render()
        assert "optmem sweep" in text
        assert "20480" in text and "1.05" in text

    def test_render_empty(self):
        from repro.analysis.sweep import SweepResult

        assert "empty" in SweepResult("x").render()

    def test_render_heterogeneous_keys(self):
        """Regression: points with differing param/metric keys must not
        KeyError — headers are the first-seen union, gaps render empty."""
        from repro.analysis.sweep import SweepPoint, SweepResult

        res = SweepResult("mixed", points=[
            SweepPoint(params={"x": 1}, metrics={"gbps": 10.0}),
            SweepPoint(params={"x": 2, "mtu": 9000},
                       metrics={"gbps": 20.0, "retr": 3}),
            SweepPoint(params={"x": 3}, metrics={"retr": 7}),
        ])
        text = res.render()
        header = text.splitlines()[1]
        for col in ("x", "mtu", "gbps", "retr"):
            assert col in header
        assert "9000" in text and "20.00" in text and "7" in text
        # every data row has the full column count despite missing keys
        rows = text.splitlines()[3:]
        assert all(row.count("|") == header.count("|") for row in rows)

    def test_sweep_with_process_executor(self):
        from repro.analysis.sweep import sweep1d
        from repro.runner import ProcessExecutor

        res = sweep1d("s", "x", [1, 2, 3], _square_metric,
                      executor=ProcessExecutor(2))
        assert res.column("y") == [1.0, 4.0, 9.0]

    def test_sweep_with_simulator(self):
        """End to end: pacing sweep through the real simulator."""
        from repro.core.rng import RngFactory
        from repro.testbeds.amlight import AmLightTestbed
        from repro.tools.iperf3 import Iperf3, Iperf3Options

        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        tool = Iperf3(snd, rcv, tb.path("lan"), rng=RngFactory(1), tick=0.006)

        def measure(pace):
            res = tool.run(Iperf3Options(duration=5, omit=1.5, fq_rate_gbps=pace,
                                         zerocopy="z"))
            return {"gbps": res.gbps}

        res = sweep1d("pacing", "pace", [10.0, 20.0, 30.0], measure)
        values = res.column("gbps")
        assert values[0] == pytest.approx(10, rel=0.05)
        assert values == sorted(values)


def _square_metric(x):
    return {"y": float(x * x)}
