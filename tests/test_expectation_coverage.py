"""Every registered experiment's ``expectation`` is asserted somewhere.

``tests/test_paper_shapes.py`` tags its test classes with
:func:`tests._expectations.asserts_expectation`; importing the module
populates the ``COVERED`` registry.  These tests close the loop in both
directions: no registered experiment may go unasserted, and no tag may
point at an experiment that no longer exists.
"""

from __future__ import annotations

import inspect

from repro.experiments import all_experiment_ids
from repro.experiments.registry import REGISTRY

import tests.test_paper_shapes  # noqa: F401  — populates COVERED
from tests._expectations import ASSERTERS, COVERED


def test_every_expectation_is_asserted():
    missing = sorted(set(all_experiment_ids()) - set(COVERED))
    assert not missing, (
        "experiments whose `expectation` no paper-shape test asserts: "
        f"{missing} — add an @asserts_expectation class to "
        "tests/test_paper_shapes.py"
    )


def test_no_stale_coverage_tags():
    stale = sorted(set(COVERED) - set(all_experiment_ids()))
    assert not stale, f"coverage tags for unregistered experiments: {stale}"


def test_expectations_are_asserted_by_test_classes():
    """Coverage must come from pytest-collectable test *classes* with
    real test methods.  A tagged module-level helper would satisfy the
    name registry while pytest never runs it; a class with no
    ``test_*`` methods would collect as zero tests."""
    for exp_id, objs in sorted(ASSERTERS.items()):
        for obj in objs:
            assert inspect.isclass(obj) and obj.__name__.startswith(
                "Test"
            ), (
                f"{exp_id!r} is asserted by {obj!r}, which pytest will "
                "not collect as a test class"
            )
            methods = [
                name
                for name, member in vars(obj).items()
                if name.startswith("test_") and callable(member)
            ]
            assert methods, (
                f"{exp_id!r} is asserted by class {obj.__qualname__} "
                "with no test_* methods — it collects as zero tests"
            )


def test_every_experiment_declares_an_expectation():
    empty = [
        exp_id for exp_id in all_experiment_ids()
        if not REGISTRY[exp_id].expectation.strip()
    ]
    assert not empty, f"experiments with a blank expectation: {empty}"
