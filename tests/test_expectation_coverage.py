"""Every registered experiment's ``expectation`` is asserted somewhere.

``tests/test_paper_shapes.py`` tags its test classes with
:func:`tests._expectations.asserts_expectation`; importing the module
populates the ``COVERED`` registry.  These tests close the loop in both
directions: no registered experiment may go unasserted, and no tag may
point at an experiment that no longer exists.
"""

from __future__ import annotations

from repro.experiments import all_experiment_ids
from repro.experiments.registry import REGISTRY

import tests.test_paper_shapes  # noqa: F401  — populates COVERED
from tests._expectations import COVERED


def test_every_expectation_is_asserted():
    missing = sorted(set(all_experiment_ids()) - set(COVERED))
    assert not missing, (
        "experiments whose `expectation` no paper-shape test asserts: "
        f"{missing} — add an @asserts_expectation class to "
        "tests/test_paper_shapes.py"
    )


def test_no_stale_coverage_tags():
    stale = sorted(set(COVERED) - set(all_experiment_ids()))
    assert not stale, f"coverage tags for unregistered experiments: {stale}"


def test_every_experiment_declares_an_expectation():
    empty = [
        exp_id for exp_id in all_experiment_ids()
        if not REGISTRY[exp_id].expectation.strip()
    ]
    assert not empty, f"experiments with a blank expectation: {empty}"
