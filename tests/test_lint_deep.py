"""The whole-program (``--deep``) lint layer.

The contract under test, from the ISSUE and README:

* the deep rules (RNG001, PURE001, SHARD001, IMP001) fire on their
  fixtures under ``tests/lint_fixtures/deep/`` — and only there do they
  fire (positives ≥1, negatives 0, no cross-rule contamination);
* the deliberately seeded regressions are caught: a crc32-colliding
  stream label pair (RNG001) and an ``os.environ`` read inside a kernel
  tick path (PURE001);
* deep rules stay out of the default (shallow) run and join under
  ``--deep`` or explicit ``--select``;
* the committed ``lint_baseline.json`` matches the tree exactly, and
  baseline comparison fails on drift in *either* direction;
* discovery skips ``tests``/``lint_fixtures`` when expanding a
  directory but lints them when targeted explicitly;
* ``--codes``/``--explain``/``--sarif`` and the noqa suppression
  grammar behave as documented.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cli import main
from repro.core.errors import ReproError
from repro.lint import (
    all_rules,
    compare_baseline,
    lint_paths,
    load_baseline,
    render_sarif,
    write_baseline,
)
from repro.lint.core import (
    FileContext,
    Rule,
    Violation,
    register,
    suppressed,
)
from repro.lint.dataflow import StrValue, resolve_str
from repro.lint.graph import ProjectGraph
from repro.lint.runner import iter_python_files

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
DEEP = REPO / "tests" / "lint_fixtures" / "deep"
BASELINE = REPO / "lint_baseline.json"

DEEP_CODES = ("IMP001", "PURE001", "RNG001", "SHARD001")

#: (code, fixture file relative to deep/, expected violation count).
FILE_CASES = [
    ("PURE001", "purity/pos_environ.py", 1),
    ("PURE001", "purity/pos_global_write.py", 3),
    ("PURE001", "purity/pos_mutable_read.py", 1),
    ("PURE001", "purity/pos_shared_cache.py", 2),
    ("PURE001", "purity/serve/repro/serve/pos_handler_env.py", 2),
    ("PURE001", "purity/quic/repro/quic/pos_pacer_env.py", 2),
    ("PURE001", "purity/neg_init_env.py", 0),
    ("PURE001", "purity/neg_constants.py", 0),
    ("PURE001", "purity/neg_not_kernel.py", 0),
    ("PURE001", "purity/serve/repro/serve/config.py", 0),
    ("PURE001", "purity/quic/repro/quic/neg_pure_pacer.py", 0),
    ("SHARD001", "shard/pos_sum_set.py", 1),
    ("SHARD001", "shard/pos_loop_dict.py", 1),
    ("SHARD001", "shard/pos_param_write.py", 1),
    ("SHARD001", "shard/pos_out_kwarg.py", 1),
    ("SHARD001", "shard/driver/repro/sim/flowsim.py", 1),
    ("SHARD001", "shard/neg_sorted.py", 0),
    ("SHARD001", "shard/neg_list_reduce.py", 0),
    ("SHARD001", "shard/neg_fresh_array.py", 0),
]

#: (code, fixture directory relative to deep/, expected count) — the
#: cross-file cases: collisions, shared namespaces, cycles, layering.
DIR_CASES = [
    ("RNG001", "rng/pos_collision", 2),
    ("RNG001", "rng/pos_dynamic", 1),
    ("RNG001", "rng/pos_shared_namespace", 1),
    ("RNG001", "rng/neg_literals", 0),
    ("RNG001", "rng/neg_callgraph", 0),
    ("RNG001", "rng/neg_namespaced", 0),
    ("IMP001", "imports/pos_cycle", 2),
    ("IMP001", "imports/pos_sim_trace", 1),
    ("IMP001", "imports/pos_sim_trace_nested", 1),
    ("IMP001", "imports/pos_sim_runner", 1),
    ("IMP001", "imports/neg_runner_sim", 0),
    ("IMP001", "imports/neg_nested_cycle", 0),
]


class TestDeepGating:
    def test_deep_rules_registered(self):
        codes = {r.code for r in all_rules()}
        assert set(DEEP_CODES) <= codes
        for code in DEEP_CODES:
            rule = next(r for r in all_rules() if r.code == code)
            assert rule.deep

    def test_default_run_excludes_deep_rules(self):
        assert lint_paths([DEEP / "purity" / "pos_environ.py"]) == []

    def test_deep_flag_includes_them(self):
        violations = lint_paths(
            [DEEP / "purity" / "pos_environ.py"], deep=True
        )
        assert [v.code for v in violations] == ["PURE001"]

    def test_explicit_select_runs_deep_rule_without_flag(self):
        violations = lint_paths(
            [DEEP / "purity" / "pos_environ.py"], select=["PURE001"]
        )
        assert len(violations) == 1


class TestDeepFixtures:
    @pytest.mark.parametrize("code,rel,count", FILE_CASES)
    def test_file_fixture(self, code, rel, count):
        violations = lint_paths([DEEP / rel], select=[code])
        assert len(violations) == count
        assert all(v.code == code for v in violations)

    @pytest.mark.parametrize("code,rel,count", DIR_CASES)
    def test_dir_fixture(self, code, rel, count):
        violations = lint_paths([DEEP / rel], select=[code])
        assert len(violations) == count
        assert all(v.code == code for v in violations)

    @pytest.mark.parametrize(
        "subdir,code",
        [("purity", "PURE001"), ("shard", "SHARD001"),
         ("rng", "RNG001"), ("imports", "IMP001")],
    )
    def test_fixture_tree_fires_only_its_rule(self, subdir, code):
        # With every rule on, a rule's fixture tree produces findings
        # for that rule alone — fixtures are minimal.
        violations = lint_paths([DEEP / subdir], deep=True)
        assert violations, f"{subdir} fixtures produced nothing"
        assert {v.code for v in violations} == {code}


class TestSeededRegressions:
    """The two deliberately planted bugs the ISSUE requires CI to catch."""

    def test_rng001_catches_crc32_colliding_labels(self):
        violations = lint_paths([DEEP / "rng" / "pos_collision"], deep=True)
        assert len(violations) == 2  # flagged at both sites
        files = {Path(v.path).name for v in violations}
        assert files == {"host_entropy.py", "burst_entropy.py"}
        for v in violations:
            assert v.code == "RNG001"
            assert "crc32-collides" in v.message
            assert "1306201125" in v.message  # shared entropy value

    def test_pure001_catches_environ_read_in_tick_path(self):
        violations = lint_paths(
            [DEEP / "purity" / "pos_environ.py"], deep=True
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.code == "PURE001"
        assert "environment" in v.message
        assert "EnvGatedKernel.step" in v.message

    def test_pure001_catches_environ_read_in_serve_handler(self):
        violations = lint_paths(
            [DEEP / "purity" / "serve"], deep=True
        )
        assert len(violations) == 2  # the handler file; config.py exempt
        for v in violations:
            assert v.code == "PURE001"
            assert Path(v.path).name == "pos_handler_env.py"
            assert "serve module repro.serve.pos_handler_env" in v.message
            assert "repro.serve.config" in v.message

    def test_pure001_serve_package_source_is_environ_clean(self):
        # The real daemon passes its own rule: no serve module outside
        # serve/config.py reads the environment.
        violations = lint_paths([SRC / "serve"], select=["PURE001"])
        assert violations == []


class TestProjectGraph:
    def test_fixture_modules_get_package_names(self):
        ctxs = [
            FileContext.load(p)
            for p in sorted((DEEP / "imports" / "pos_cycle").rglob("*.py"))
        ]
        graph = ProjectGraph.build(ctxs)
        assert set(graph.modules) == {"repro.alpha", "repro.beta"}

    def test_cycle_detection(self):
        ctxs = [
            FileContext.load(p)
            for p in sorted((DEEP / "imports" / "pos_cycle").rglob("*.py"))
        ]
        graph = ProjectGraph.build(ctxs)
        assert graph.cycles() == [["repro.alpha", "repro.beta"]]

    def test_nested_import_breaks_cycle_but_keeps_edge(self):
        ctxs = [
            FileContext.load(p)
            for p in sorted(
                (DEEP / "imports" / "neg_nested_cycle").rglob("*.py")
            )
        ]
        graph = ProjectGraph.build(ctxs)
        assert graph.cycles() == []
        nested = [e for e in graph.project_edges() if e.nested]
        assert [(e.source, e.target) for e in nested] == [
            ("repro.delta", "repro.gamma")
        ]

    def test_base_resolution_across_modules(self, tmp_path):
        (tmp_path / "basemod.py").write_text(
            "class Root:\n    pass\n\n\nclass Base(Root):\n    pass\n"
        )
        (tmp_path / "leafmod.py").write_text(
            "from basemod import Base\n\n\nclass Leaf(Base):\n    pass\n"
        )
        ctxs = [FileContext.load(p) for p in sorted(tmp_path.glob("*.py"))]
        graph = ProjectGraph.build(ctxs)
        leaf = graph.modules["leafmod"].classes["Leaf"]
        names = set(graph.base_names("leafmod", leaf))
        assert {"Base", "basemod.Base", "Root", "basemod.Root"} <= names

    def test_binding_classification(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\n"
            "ONCE = 1.5\n"
            "TWICE = 1.5\n"
            "TWICE = 2.5\n"
            "BOX = {}\n"
        )
        graph = ProjectGraph.build([FileContext.load(tmp_path / "mod.py")])
        bindings = graph.modules["mod"].bindings
        assert bindings["np"].kind == "import"
        assert bindings["ONCE"].kind == "constant"
        assert bindings["TWICE"].kind == "mutable"
        assert bindings["BOX"].kind == "mutable"  # a dict can be written


class TestDataflow:
    @staticmethod
    def value_of(src: str, env: dict | None = None) -> StrValue:
        node = ast.parse(src, mode="eval").body
        return resolve_str(node, env or {})

    def test_literal_and_concatenation(self):
        assert self.value_of('"host" + "-jitter"').value == "host-jitter"
        assert self.value_of('"host" + "-jitter"').complete

    def test_fstring_constant_prefix(self):
        value = self.value_of('f"task:{name}"')
        assert not value.complete
        assert value.prefix == "task:"

    def test_fstring_repr_conversion_is_not_static(self):
        # !r rewrites the text (quotes), so the label is not derivable.
        assert not self.value_of('f"{label!r}"').complete

    def test_name_resolution_through_env(self):
        env = {"suffix": StrValue("jitter", True)}
        value = self.value_of('"host-" + suffix', env)
        assert value.complete and value.value == "host-jitter"

    def test_unknown_name_is_unknown(self):
        value = self.value_of("mystery")
        assert not value.complete and value.prefix == ""


class TestBaseline:
    @staticmethod
    def _violation(path: str, line: int = 3) -> Violation:
        return Violation(
            path=path, line=line, col=1, code="IMP001", message="msg"
        )

    def test_round_trip_is_clean(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        violations = [self._violation(str(tmp_path / "a.py"))]
        assert write_baseline(violations, baseline) == 1
        diff = compare_baseline(violations, baseline)
        assert diff.clean and diff.matched == 1

    def test_new_finding_is_drift(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        tracked = [self._violation(str(tmp_path / "a.py"))]
        write_baseline(tracked, baseline)
        extra = self._violation(str(tmp_path / "b.py"), line=9)
        diff = compare_baseline(tracked + [extra], baseline)
        assert not diff.clean
        assert diff.new == [extra] and diff.stale == []

    def test_stale_entry_is_drift(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        tracked = [
            self._violation(str(tmp_path / "a.py")),
            self._violation(str(tmp_path / "b.py"), line=9),
        ]
        write_baseline(tracked, baseline)
        diff = compare_baseline(tracked[:1], baseline)
        assert not diff.clean
        assert diff.new == [] and len(diff.stale) == 1
        assert diff.stale[0]["path"] == "b.py"  # stored relative

    def test_load_errors_are_repro_errors(self, tmp_path):
        with pytest.raises(ReproError):
            load_baseline(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            load_baseline(bad)
        empty = tmp_path / "empty.json"
        empty.write_text("{}")
        with pytest.raises(ReproError):
            load_baseline(empty)

    def test_committed_baseline_matches_tree(self):
        # The CI contract: deep lint over src/ must match
        # lint_baseline.json exactly, in both directions.
        violations = lint_paths([SRC], deep=True)
        diff = compare_baseline(violations, BASELINE)
        assert diff.clean, diff.render()

    def test_committed_baseline_is_deep_codes_only(self):
        codes = {entry["code"] for entry in load_baseline(BASELINE)}
        assert codes <= set(DEEP_CODES)


class TestDiscovery:
    def test_expanding_tests_skips_lint_fixtures(self):
        found = iter_python_files([REPO / "tests"])
        assert found  # the test modules themselves
        assert not any("lint_fixtures" in p.parts for p in found)

    def test_explicit_fixture_target_still_lints(self):
        found = iter_python_files([DEEP / "purity"])
        assert {p.name for p in found} >= {"pos_environ.py"}

    def test_discovery_is_sorted(self):
        found = iter_python_files([REPO / "src"])
        assert found == sorted(found, key=str)

    def test_repo_root_shallow_lint_is_clean(self):
        assert lint_paths([REPO]) == []


class TestRegistryGuards:
    def test_duplicate_code_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule code"):
            @register
            class Dup(Rule):  # noqa: F811 - intentionally clashing
                code = "DET001"
                name = "dup"
                description = "dup"

    def test_deep_rules_have_docstrings_for_explain(self):
        for code in DEEP_CODES:
            rule = next(r for r in all_rules() if r.code == code)
            assert rule.summary().startswith(code)
            assert len(rule.explain()) > len(rule.summary())


class TestCli:
    def test_codes_lists_every_rule(self, capsys):
        assert main(["lint", "--codes"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert out.count(rule.code) >= 1
        assert "RNG001" in out

    def test_explain_known_code(self, capsys):
        assert main(["lint", "--explain", "RNG001"]) == 0
        out = capsys.readouterr().out
        assert "crc32" in out and "deep" in out

    def test_explain_unknown_code_is_clean_error(self, capsys):
        assert main(["lint", "--explain", "NOPE999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_deep_flag_finds_fixture_violations(self, capsys):
        rc = main(
            ["lint", str(DEEP / "rng" / "pos_collision"), "--deep"]
        )
        assert rc == 1
        assert "RNG001" in capsys.readouterr().out

    def test_sarif_format(self, capsys):
        rc = main(
            ["lint", str(DEEP / "purity" / "pos_environ.py"),
             "--deep", "--format", "sarif"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} >= set(
            DEEP_CODES
        )
        assert run["results"][0]["ruleId"] == "PURE001"

    def test_baseline_update_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(DEEP / "rng" / "pos_collision")
        assert main(
            ["lint", target, "--deep",
             "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert "2 tracked finding(s)" in capsys.readouterr().out
        assert main(
            ["lint", target, "--deep", "--baseline", str(baseline)]
        ) == 0
        assert "no drift" in capsys.readouterr().out

    def test_baseline_drift_fails_both_directions(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(DEEP / "rng" / "pos_collision"), "--deep",
             "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        capsys.readouterr()
        # Different target: its finding is new, the tracked two are stale.
        rc = main(
            ["lint", str(DEEP / "rng" / "pos_dynamic"), "--deep",
             "--baseline", str(baseline)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "new:" in out and "stale:" in out

    def test_update_baseline_requires_baseline(self, capsys):
        assert main(["lint", "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_sarif_baseline_mode_reports_drift_only(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        target = str(DEEP / "rng" / "pos_collision")
        main(["lint", target, "--deep",
              "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        assert main(
            ["lint", target, "--deep", "--baseline", str(baseline),
             "--format", "sarif"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []  # tracked, not drifted


ALL_CODES = sorted(r.code for r in all_rules())


class TestNoqaGrammar:
    """Satellite: the ``# repro: noqa-<CODE>`` suppression grammar."""

    @staticmethod
    def _ctx(comment: str) -> FileContext:
        return FileContext(
            path=Path("x.py"), source=f"value = 1  {comment}\n"
        )

    @staticmethod
    def _violation(code: str) -> Violation:
        return Violation(path="x.py", line=1, col=1, code=code, message="m")

    def test_comma_list_with_arbitrary_whitespace(self):
        ctx = self._ctx("#  repro:   noqa-DET001 ,  RNG001,SHARD001")
        for code in ("DET001", "RNG001", "SHARD001"):
            assert suppressed(ctx, self._violation(code))
        assert not suppressed(ctx, self._violation("PURE001"))

    def test_no_space_variant(self):
        ctx = self._ctx("#repro:noqa-IMP001")
        assert suppressed(ctx, self._violation("IMP001"))

    def test_unknown_code_is_inert(self):
        ctx = self._ctx("# repro: noqa-ZZZ999")
        assert not suppressed(ctx, self._violation("DET001"))

    def test_unknown_code_in_list_does_not_break_known_ones(self):
        ctx = self._ctx("# repro: noqa-DET001, ZZZ999")
        assert suppressed(ctx, self._violation("DET001"))

    def test_wrong_line_is_not_suppressed(self):
        ctx = FileContext(
            path=Path("x.py"),
            source="value = 1  # repro: noqa-DET001\nother = 2\n",
        )
        v = Violation(path="x.py", line=2, col=1, code="DET001", message="m")
        assert not suppressed(ctx, v)

    @given(
        chosen=st.lists(
            st.sampled_from(ALL_CODES), min_size=1, max_size=4, unique=True
        ),
        pad=st.sampled_from(["", " ", "   "]),
        sep=st.sampled_from([",", ", ", " ,", " , "]),
    )
    def test_round_trip(self, chosen, pad, sep):
        comment = f"#{pad}repro:{pad}noqa-" + sep.join(chosen)
        ctx = self._ctx(comment)
        for code in ALL_CODES:
            assert suppressed(ctx, self._violation(code)) == (
                code in chosen
            )
