"""Kernel version model: parsing, feature gates, efficiency scaling."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.host.kernel import (
    CUSTOM_MAX_SKB_FRAGS,
    KERNELS,
    Kernel,
    KernelVersion,
)


class TestVersionParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("5.15", (5, 15, 0)),
            ("6.8", (6, 8, 0)),
            ("6.5.0", (6, 5, 0)),
            ("5.10.0-21-amd64", (5, 10, 0)),
            ("4.17.3", (4, 17, 3)),
        ],
    )
    def test_parse(self, text, expected):
        v = KernelVersion.parse(text)
        assert (v.major, v.minor, v.patch) == expected

    def test_parse_garbage(self):
        with pytest.raises(ConfigurationError):
            KernelVersion.parse("not-a-kernel")

    def test_ordering(self):
        assert KernelVersion.parse("5.15") < KernelVersion.parse("6.5")
        assert KernelVersion.parse("6.8") > KernelVersion.parse("6.5")
        assert KernelVersion.parse("5.9") < KernelVersion.parse("5.15")

    def test_str(self):
        assert str(KernelVersion.parse("6.8")) == "6.8"
        assert str(KernelVersion.parse("6.5.3")) == "6.5.3"


class TestFeatureGates:
    def test_msg_zerocopy_since_4_17(self):
        assert not Kernel.named("4.16").supports_msg_zerocopy
        assert Kernel.named("4.17").supports_msg_zerocopy
        assert Kernel.named("6.8").supports_msg_zerocopy

    def test_big_tcp_ipv6_since_5_19(self):
        assert not Kernel.named("5.15").supports_big_tcp_ipv6
        assert Kernel.named("5.19").supports_big_tcp_ipv6

    def test_big_tcp_ipv4_since_6_3(self):
        assert not Kernel.named("5.19").supports_big_tcp_ipv4
        assert Kernel.named("6.3").supports_big_tcp_ipv4
        assert Kernel.named("6.8").supports_big_tcp_ipv4

    def test_hw_gro_since_6_11(self):
        assert not KERNELS["6.8"].supports_hw_gro
        assert KERNELS["6.11"].supports_hw_gro

    def test_unknown_feature(self):
        with pytest.raises(ConfigurationError):
            KERNELS["6.8"].supports("quantum_tcp")

    def test_big_tcp_limits(self):
        assert KERNELS["5.15"].big_tcp_limit() == 65536
        assert KERNELS["6.8"].big_tcp_limit() > 65536
        assert KERNELS["6.8"].big_tcp_limit(ipv6=True) >= KERNELS["6.8"].big_tcp_limit()

    def test_bigtcp_zerocopy_combo_needs_custom_frags(self):
        stock = KERNELS["6.8"]
        assert not stock.allows_bigtcp_with_zerocopy
        custom = stock.with_custom_skb_frags()
        assert custom.allows_bigtcp_with_zerocopy
        assert custom.max_skb_frags == CUSTOM_MAX_SKB_FRAGS


class TestCostScale:
    def test_baseline_is_6_8(self):
        for arch in ("intel", "amd"):
            assert KERNELS["6.8"].stack_cost_scale(arch) == pytest.approx(1.0)

    def test_amd_paper_ratios(self):
        """Fig. 12: 5.15 -> 6.5 ~= +12%, 6.5 -> 6.8 ~= +17%."""
        s515 = KERNELS["5.15"].stack_cost_scale("amd")
        s65 = KERNELS["6.5"].stack_cost_scale("amd")
        s68 = KERNELS["6.8"].stack_cost_scale("amd")
        assert s515 / s65 == pytest.approx(1.12, abs=0.02)
        assert s65 / s68 == pytest.approx(1.17, abs=0.02)

    def test_intel_paper_ratio(self):
        """Fig. 13: 5.15 -> 6.8 ~= +27% on Intel."""
        s515 = KERNELS["5.15"].stack_cost_scale("intel")
        assert s515 == pytest.approx(1.28, abs=0.03)

    def test_interpolation_between_anchors(self):
        s62 = Kernel.named("6.2").stack_cost_scale("amd")
        s515 = KERNELS["5.15"].stack_cost_scale("amd")
        s65 = KERNELS["6.5"].stack_cost_scale("amd")
        assert s65 < s62 < s515

    def test_clamped_outside_anchors(self):
        ancient = Kernel.named("4.4").stack_cost_scale("intel")
        future = Kernel.named("7.0").stack_cost_scale("intel")
        assert ancient == KERNELS["5.10"].stack_cost_scale("intel")
        assert future == pytest.approx(1.0)

    def test_unknown_arch(self):
        with pytest.raises(ConfigurationError):
            KERNELS["6.8"].stack_cost_scale("sparc")

    def test_str_mentions_custom_frags(self):
        assert "MAX_SKB_FRAGS=45" in str(KERNELS["6.8"].with_custom_skb_frags())
        assert "MAX_SKB_FRAGS" not in str(KERNELS["6.8"])
