"""Property: campaign results are scheduling-invariant.

Whatever the worker count and however the task list is shuffled, every
experiment's rows must be bit-identical to the serial baseline, and
the report must come back in submission order.  Hypothesis drives the
permutation and the job count; the experiments used are the cheapest
registered ones so each example stays subsecond.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runner import RunnerConfig, TaskSpec, run_tasks

from tests._golden import GOLDEN_CONFIG

#: Cheapest registered experiments — wall time matters: every
#: hypothesis example runs all of them.
IDS = ["var", "pit-fqrate", "abl-burst", "fw-combo"]


@pytest.fixture(scope="module")
def baseline_digests():
    report = run_tasks(
        [TaskSpec(exp_id, GOLDEN_CONFIG) for exp_id in IDS],
        RunnerConfig(jobs=1, use_cache=False),
    )
    return {t.spec.exp_id: t.result.digest() for t in report.tasks}


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(order=st.permutations(IDS), jobs=st.sampled_from([1, 2, 4]))
def test_results_invariant_to_jobs_and_submission_order(
    baseline_digests, order, jobs
):
    report = run_tasks(
        [TaskSpec(exp_id, GOLDEN_CONFIG) for exp_id in order],
        RunnerConfig(jobs=jobs, use_cache=False),
    )
    # submission order is preserved in the report...
    assert [t.spec.exp_id for t in report.tasks] == list(order)
    # ...and no scheduling choice changes a single number
    for task in report.tasks:
        assert task.result.digest() == baseline_digests[task.spec.exp_id], (
            f"{task.spec.exp_id} drifted at jobs={jobs}, order={order}"
        )


@settings(max_examples=3, deadline=None)
@given(values=st.permutations([1, 2, 3, 4, 5, 6]))
def test_sweep_points_invariant_to_executor(values):
    """sweep1d returns grid-ordered, executor-independent points."""
    from repro.analysis.sweep import sweep1d
    from repro.runner import ProcessExecutor

    serial = sweep1d("s", "x", values, _measure)
    pooled = sweep1d("s", "x", values, _measure, executor=ProcessExecutor(2))
    assert [p.params for p in serial.points] == [p.params for p in pooled.points]
    assert [p.metrics for p in serial.points] == [p.metrics for p in pooled.points]


def _measure(x):
    return {"y": float(x * x)}
