"""Regenerate the golden characterization files (``tests/golden/``).

Run after an intentional change to the simulator's numbers::

    PYTHONPATH=src python -m tests.make_golden

Uses a serial in-process campaign — the baseline the parallel and
cache-hit runs are held to.
"""

from __future__ import annotations

import json
import sys

from repro.experiments import all_experiment_ids
from repro.runner import RunnerConfig, run_experiments

from tests._golden import GOLDEN_CONFIG, GOLDEN_DIR, golden_entry, golden_path


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    report = run_experiments(
        all_experiment_ids(),
        config=GOLDEN_CONFIG,
        runner=RunnerConfig(jobs=1, use_cache=False),
    )
    for result in report.results:
        entry = golden_entry(result)
        golden_path(result.exp_id).write_text(
            json.dumps(entry, indent=2, sort_keys=True) + "\n"
        )
        print(f"{result.exp_id:12s} {entry['digest'][:16]}  "
              f"{entry['n_rows']} rows")
    print(report.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
