"""The congestion-control zoo: algorithms, registry dispatch, RTO reset.

Three families of pins:

* scalar algorithm behaviour — the response-function shapes that make
  each zoo member worth simulating (HighSpeed's log-linear backoff,
  H-TCP's elapsed-time alpha, Scalable's MIMD invariance, Westwood's
  bandwidth-estimate ssthresh, TunableCubic's knob plumbing);
* the batch registry — both :class:`CcBatch` constructors derive group
  membership and ordering from one registry, subclasses of batched
  algorithms must register or raise (never silently fall back to the
  slow object path computing who-knows-whose dynamics), and the
  object/template constructors stay bit-identical on mixed kinds;
* the RTO reset — ``on_timeout`` must clear algorithm epoch state via
  ``_react_to_timeout``, not just the base window fields.  The H-TCP
  and Cubic assertions here fail against the pre-fix base class (which
  reset only :class:`CcState`), including through the micro simulator's
  real ``_on_rto`` path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.tcp.cc import (
    Bbr1,
    CC_ALGORITHMS,
    Cubic,
    HighSpeed,
    HTcp,
    Scalable,
    TunableCubic,
    WestwoodPlus,
    make_cc,
)
from repro.tcp.cc.batch import (
    CcBatch,
    _ObjectGroup,
    group_class_for,
    template_kinds,
)
from repro.tcp.cc.highspeed import A_STEP, B_STEP, W_BOUNDS

MSS = 8960.0


def _into_ca(cc, now=0.0, rtt=0.05, ticks=40):
    """Drive a CC out of slow start into congestion avoidance."""
    cc.on_loss(now, rtt)  # exits slow start via the loss reaction
    return cc


def _ca_growth(cc, now, rtt=0.05, delivered=None):
    """One congestion-avoidance tick's cwnd delta."""
    if delivered is None:
        delivered = cc.cwnd_bytes
    before = cc.cwnd_bytes
    cc.on_tick(now, 0.008, delivered, rtt)
    return cc.cwnd_bytes - before


class TestHighSpeed:
    def test_table_shape(self):
        # Below w=38 the response is standard Reno (a=1, b=0.5); both
        # schedules are monotone toward a>>1, b=0.1 at w=83000.
        assert W_BOUNDS[0] == pytest.approx(38.0)
        assert A_STEP[0] == 1.0 and B_STEP[0] == 0.5
        # Monotone within the table (the Reno->table seam at w=38 dips
        # to a(38) ~ 0.95 by the RFC formula — continuity is approximate).
        assert np.all(np.diff(A_STEP[1:]) > 0)
        assert np.all(np.diff(B_STEP[1:]) <= 0)
        assert A_STEP[-1] > 60.0
        assert B_STEP[-1] == pytest.approx(0.1, abs=0.01)

    def test_small_window_is_reno(self):
        hs = _into_ca(HighSpeed(mss=MSS))
        rn = _into_ca(make_cc("reno", mss=MSS))
        rn.state.cwnd_bytes = hs.state.cwnd_bytes = 20 * MSS
        assert _ca_growth(hs, 1.0) == _ca_growth(rn, 1.0)

    def test_large_window_grows_faster_and_backs_off_less(self):
        hs = _into_ca(HighSpeed(mss=MSS))
        rn = _into_ca(make_cc("reno", mss=MSS))
        rn.state.cwnd_bytes = hs.state.cwnd_bytes = 5000 * MSS
        assert _ca_growth(hs, 1.0) > 10 * _ca_growth(rn, 1.0)
        hs.state.cwnd_bytes = 5000 * MSS
        hs.on_loss(100.0, 0.05)
        assert hs.state.cwnd_bytes > 0.7 * 5000 * MSS  # b(5000) ~ 0.25


class TestHTcp:
    def test_alpha_is_reno_within_delta_l(self):
        ht = _into_ca(HTcp(mss=MSS))
        ht.state.cwnd_bytes = 100 * MSS
        # First CA tick seeds the epoch clock; within 1s alpha == 1.
        g0 = _ca_growth(ht, 1.0)
        assert g0 == pytest.approx(MSS, rel=1e-9)

    def test_alpha_grows_with_epoch_age(self):
        ht = _into_ca(HTcp(mss=MSS))
        ht.state.cwnd_bytes = 100 * MSS
        _ca_growth(ht, 1.0)  # seed clock at t=1
        ht.state.cwnd_bytes = 100 * MSS
        g_old = _ca_growth(ht, 6.0)  # delta ~ 5s: alpha ~ 1+40+4
        assert g_old > 20 * MSS

    def test_beta_tracks_rtt_ratio(self):
        ht = HTcp(mss=MSS)
        ht.state.in_slow_start = False
        ht.state.cwnd_bytes = 100 * MSS
        ht.on_tick(0.5, 0.008, MSS, 0.040)
        ht.on_tick(1.0, 0.008, MSS, 0.060)  # min/max = 2/3
        before = ht.state.cwnd_bytes
        ht.on_loss(2.0, 0.05)
        assert ht.state.cwnd_bytes == pytest.approx(
            before * (0.040 / 0.060), rel=1e-9
        )

    def test_beta_clips_to_bounds(self):
        ht = HTcp(mss=MSS)
        ht.state.in_slow_start = False
        ht.state.cwnd_bytes = 100 * MSS
        ht.on_tick(0.5, 0.008, MSS, 0.010)
        ht.on_tick(1.0, 0.008, MSS, 0.100)  # ratio 0.1 -> clip 0.5
        before = ht.state.cwnd_bytes
        ht.on_loss(2.0, 0.05)
        assert ht.state.cwnd_bytes == pytest.approx(before * 0.5, rel=1e-9)


class TestScalable:
    def test_mimd_growth_and_backoff_are_scale_invariant(self):
        sc = _into_ca(Scalable(mss=MSS))
        for w in (100 * MSS, 10_000 * MSS):
            sc.state.cwnd_bytes = w
            assert _ca_growth(sc, 1.0, delivered=w) == pytest.approx(
                0.01 * w, rel=1e-9
            )
        sc.state.cwnd_bytes = 10_000 * MSS
        sc.on_loss(100.0, 0.05)
        assert sc.state.cwnd_bytes == pytest.approx(
            0.875 * 10_000 * MSS, rel=1e-9
        )


class TestWestwood:
    def test_loss_sets_ssthresh_to_estimated_bdp(self):
        ww = WestwoodPlus(mss=MSS)
        ww.state.in_slow_start = False
        rtt = 0.05
        rate = 2.5e9 / 8  # bytes/s
        now = 0.0
        for _ in range(400):  # converge the 7/8-1/8 filter
            now += 0.008
            ww.on_tick(now, 0.008, rate * 0.008, rtt)
        assert ww._bw_est == pytest.approx(rate, rel=0.05)
        ww.state.cwnd_bytes = 4 * rate * rtt
        ww.on_loss(now, rtt)
        assert ww.state.cwnd_bytes == pytest.approx(rate * rtt, rel=0.05)
        assert ww.state.ssthresh_bytes == ww.state.cwnd_bytes

    def test_random_loss_at_sustained_rate_costs_little(self):
        # The Westwood selling point: when delivery rate has not
        # dropped, a loss barely dents the window (vs Reno's halving).
        ww = WestwoodPlus(mss=MSS)
        ww.state.in_slow_start = False
        rtt, rate = 0.05, 1.25e9 / 8
        now = 0.0
        for _ in range(400):
            now += 0.008
            ww.on_tick(now, 0.008, rate * 0.008, rtt)
        ww.state.cwnd_bytes = rate * rtt * 1.05  # just above BDP
        before = ww.state.cwnd_bytes
        ww.on_loss(now, rtt)
        assert ww.state.cwnd_bytes > 0.85 * before


class TestTunableCubic:
    def test_defaults_are_bit_identical_to_cubic(self):
        a, b = Cubic(mss=MSS), TunableCubic(mss=MSS)
        now = 0.0
        for step in range(500):
            now += 0.008
            d = a.cwnd_bytes * 0.16
            a.on_tick(now, 0.008, d, 0.05)
            b.on_tick(now, 0.008, d, 0.05)
            if step in (120, 300):
                a.on_loss(now, 0.05)
                b.on_loss(now, 0.05)
            assert a.cwnd_bytes == b.cwnd_bytes

    def test_beta_controls_backoff(self):
        tc = _into_ca(TunableCubic(mss=MSS, beta=0.5))
        tc.state.cwnd_bytes = 1000 * MSS
        tc.on_loss(10.0, 0.05)
        assert tc.state.cwnd_bytes == pytest.approx(500 * MSS, rel=1e-9)

    def test_alpha_overrides_friendly_slope(self):
        assert TunableCubic(mss=MSS, alpha=1.7)._alpha == 1.7
        # default derives from the chosen beta, not Cubic's
        assert TunableCubic(mss=MSS, beta=0.5)._alpha == pytest.approx(
            3.0 * 0.5 / 1.5
        )

    @pytest.mark.parametrize(
        "kwargs",
        [{"beta": 0.0}, {"beta": 1.0}, {"c": 0.0}, {"c": -1.0}, {"alpha": 0.0}],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            TunableCubic(mss=MSS, **kwargs)


class TestMakeCcParams:
    def test_parameterized_name_round_trip(self):
        cc = make_cc("tunable-cubic:alpha=1.5,beta=0.5,c=0.8", mss=MSS)
        assert (cc._alpha, cc.BETA, cc.C) == (1.5, 0.5, 0.8)

    def test_whitespace_and_case_tolerant(self):
        cc = make_cc(" Tunable-Cubic :beta=0.6", mss=MSS)
        assert cc.BETA == 0.6

    @pytest.mark.parametrize(
        "name",
        [
            "tunable-cubic:alpha",
            "tunable-cubic:=1.5",
            "tunable-cubic:alpha=fast",
            "cubic:alpha=1.5",  # plain cubic takes no parameters
            "nosuchcc",
        ],
    )
    def test_rejects_malformed(self, name):
        with pytest.raises(ConfigurationError):
            make_cc(name, mss=MSS)


class TestBatchRegistry:
    def test_every_algorithm_resolves(self):
        batchable = {
            name
            for name, cls in CC_ALGORITHMS.items()
            if group_class_for(cls) is not None
        }
        assert batchable == {
            "cubic", "reno", "highspeed", "htcp", "scalable",
            "westwood", "westwood+", "tunable-cubic",
        }
        assert template_kinds() == sorted(batchable)

    def test_unregistered_subclass_of_batched_cc_raises(self):
        # The old dispatch (`type(cc) is Cubic`) silently demoted any
        # Cubic subclass to the slow object path; the registry refuses.
        class FutureCubic(Cubic):
            name = "future-cubic"

        with pytest.raises(ConfigurationError, match="FutureCubic"):
            CcBatch([FutureCubic(mss=MSS)])

    def test_subclass_may_opt_out_explicitly(self):
        class OddCubic(Cubic):
            name = "odd-cubic"
            batch_group = None

        batch = CcBatch([OddCubic(mss=MSS), Cubic(mss=MSS)])
        kinds = [type(g) for g in batch._groups]
        assert _ObjectGroup in kinds

    def test_object_path_cc_subclass_is_fine(self):
        class TracingBbr(Bbr1):
            name = "tracing-bbr"

        batch = CcBatch([TracingBbr(mss=MSS)])
        assert isinstance(batch._groups[0], _ObjectGroup)

    def test_registered_subclass_batches(self):
        batch = CcBatch([TunableCubic(mss=MSS, beta=0.6)])
        grp = batch._groups[0]
        assert type(grp) is TunableCubic.batch_group
        assert grp.full

    def test_from_kinds_rejects_object_path_cc(self):
        with pytest.raises(ConfigurationError, match="template batching"):
            CcBatch.from_kinds(["cubic", "bbr1"], mss=MSS)


class TestConstructorParity:
    """Object and template constructors: one registry, one ordering."""

    KINDS = [
        "westwood", "cubic", "tunable-cubic:beta=0.6", "scalable",
        "reno", "htcp", "highspeed", "cubic", "westwood", "reno",
    ]

    def test_group_order_identical(self):
        objs = CcBatch([make_cc(k, mss=MSS) for k in self.KINDS])
        tmpl = CcBatch.from_kinds(self.KINDS, mss=MSS)
        assert [type(g) for g in objs._groups] == [
            type(g) for g in tmpl._groups
        ]
        for a, b in zip(objs._groups, tmpl._groups):
            assert np.array_equal(a.idx, b.idx)

    def test_mixed_kind_trajectories_bit_identical(self):
        objs = CcBatch([make_cc(k, mss=MSS) for k in self.KINDS])
        tmpl = CcBatch.from_kinds(self.KINDS, mss=MSS)
        n = len(self.KINDS)
        rng = np.random.default_rng(5)
        now, dt, rtt = 0.0, 0.008, 0.054
        for step in range(1200):
            now += dt
            delivered = rng.uniform(0, 2.5, n) * objs.cwnd * (dt / rtt)
            al = rng.random(n) < 0.05
            loss = np.nonzero(rng.random(n) < 0.01)[0]
            to = np.nonzero(rng.random(n) < 0.003)[0]
            ra = objs.feedback(now, dt, rtt, delivered, loss, al, 1e9)
            rb = tmpl.feedback(now, dt, rtt, delivered, loss, al, 1e9)
            assert ra == rb, step
            assert objs.timeout(now, to) == tmpl.timeout(now, to), step
            assert np.array_equal(objs.cwnd, tmpl.cwnd), step


class TestTimeoutReset:
    """RTO must clear algorithm epoch state, not just the base window.

    Every state assertion here fails against the pre-fix ``on_timeout``
    (which touched only :class:`~repro.tcp.cc.base.CcState`).
    """

    def _established_cubic(self):
        cc = Cubic(mss=MSS)
        now = 0.0
        for _ in range(200):
            now += 0.008
            cc.on_tick(now, 0.008, cc.cwnd_bytes * 0.16, 0.05)
        cc.on_loss(now, 0.05)  # sets w_max, k, epoch
        assert cc._epoch_start is not None and cc._w_max_seg > 0.0
        return cc, now

    def test_cubic_timeout_forgets_epoch(self):
        cc, now = self._established_cubic()
        cc.on_timeout(now + 0.3)
        assert cc._epoch_start is None
        assert cc._w_max_seg == 0.0
        assert cc._k == 0.0
        assert cc._w_est_seg == 0.0
        # base reset still applies
        assert cc.state.cwnd_bytes == 2 * MSS
        assert cc.state.in_slow_start

    def test_cubic_post_rto_loss_has_no_stale_peak(self):
        # Fast convergence keys off w_max; a stale pre-RTO peak would
        # make the first post-RTO loss dip as if the old epoch never
        # ended.  After the reset the loss must behave like a fresh
        # flow's: w_max comes from the current (small) window only.
        cc, now = self._established_cubic()
        cc.on_timeout(now + 0.3)
        cc.state.cwnd_bytes = 10 * MSS
        cc.state.in_slow_start = False
        cc.on_loss(now + 1.0, 0.05)
        assert cc._w_max_seg == pytest.approx(10.0, rel=1e-9)

    def test_htcp_timeout_resets_epoch_clock(self):
        ht = _into_ca(HTcp(mss=MSS))
        ht.state.cwnd_bytes = 100 * MSS
        now = 1.0
        for _ in range(800):  # age the growth clock ~6.4s
            now += 0.008
            ht.on_tick(now, 0.008, MSS, 0.05)
        assert ht._delta_start is not None
        ht.on_timeout(now)
        assert ht._delta_start is None
        assert ht._rtt_min == float("inf") and ht._rtt_max == 0.0
        # Behavioural half: the first post-RTO CA tick must grow with a
        # fresh alpha == 1 (Reno's mss * d/cwnd), not alpha(6.4s) ~ 72.
        ht.state.in_slow_start = False
        ht.state.cwnd_bytes = 100 * MSS
        g = _ca_growth(ht, now + 0.1, delivered=MSS)
        assert g == pytest.approx(MSS / 100.0, rel=1e-9)

    def test_westwood_timeout_restarts_sample_window(self):
        ww = WestwoodPlus(mss=MSS)
        rtt, rate = 0.05, 1.25e9 / 8
        now = 0.0
        for _ in range(400):
            now += 0.008
            ww.on_tick(now, 0.008, rate * 0.008, rtt)
        stall_end = now + 5.0  # nothing delivered during the stall
        ww.on_timeout(stall_end)
        assert ww._acked == 0.0
        assert ww._win_start == stall_end
        # ssthresh aims at the measured BDP, not half the dead window
        assert ww.state.ssthresh_bytes == pytest.approx(
            ww._bw_est * ww._rtt_min, rel=1e-6
        )

    def test_micro_sim_rto_resets_epoch_through_real_path(self):
        # Through the packet-level sender's actual ``_on_rto``: run a
        # flow into congestion avoidance, fire the retransmission
        # timeout for real, and the CC's epoch state must be gone.
        from repro.micro.simulation import MicroSimulation

        for kind, probe in (
            ("cubic", lambda cc: cc._epoch_start),
            ("htcp", lambda cc: cc._delta_start),
        ):
            sim = MicroSimulation(
                rate_gbps=5.0, rtt_ms=20.0, buffer_mb=0.5, cc=kind
            )
            # Wire the dumbbell exactly as MicroSimulation.run does,
            # but keep the engine so the run can pause mid-flight.
            from repro.core import units
            from repro.core.engine import Engine
            from repro.micro.endpoint import MicroReceiver, MicroSender
            from repro.micro.queues import LinkQueue

            eng = Engine()
            one_way = units.ms(sim.rtt_ms) / 2.0
            rate = units.gbps(sim.rate_gbps)
            ack_path = LinkQueue(
                engine=eng, rate=rate, delay=one_way, size_of=lambda p: 60.0
            )
            receiver = MicroReceiver(engine=eng, ack_path=ack_path)
            data_path = LinkQueue(
                engine=eng, rate=rate, delay=one_way,
                buffer_bytes=sim.buffer_mb * units.MB,
                deliver=receiver.on_segment,
            )
            sender = MicroSender(
                engine=eng, data_path=data_path, mss=sim.segment_bytes,
                cc_name=kind,
            )
            ack_path.deliver = sender.on_ack
            sender.start()
            eng.run(until=3.0)  # buffer losses push the flow into CA
            assert probe(sender.cc) is not None, kind
            sender._on_rto()
            assert probe(sender.cc) is None, kind
            assert sender.cc.state.in_slow_start
            eng.run(until=4.0)  # recovery proceeds sanely after reset
            assert receiver.delivered_bytes > 0
