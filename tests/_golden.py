"""Golden characterization-test machinery.

``tests/golden/<exp_id>.json`` commits a digest of every registered
experiment's rows under :data:`GOLDEN_CONFIG`.  The characterization
tests assert that serial, parallel (``jobs=4``), and cache-hit
campaigns all reproduce those digests exactly — parallelism and
caching must never change a number.

Regenerate after an *intentional* simulator change with::

    PYTHONPATH=src python -m tests.make_golden

and review the digest diff like any other golden-file change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.tools.harness import HarnessConfig

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Cheap but non-degenerate fidelity: 2 repetitions so stdev columns
#: are live, 4 s runs with a 1 s omit window, coarse 8 ms ticks.
GOLDEN_CONFIG = HarnessConfig(
    repetitions=2, duration=4.0, omit=1.0, tick=0.008, seed=2024
)


def golden_path(exp_id: str) -> Path:
    return GOLDEN_DIR / f"{exp_id}.json"


def load_golden(exp_id: str) -> dict:
    return json.loads(golden_path(exp_id).read_text())


def golden_ids() -> list[str]:
    return sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))


def golden_entry(result) -> dict:
    """The committed form: digest plus enough shape to debug a drift."""
    return {
        "exp_id": result.exp_id,
        "config": GOLDEN_CONFIG.to_dict(),
        "digest": result.digest(),
        "columns": list(result.columns),
        "n_rows": len(result.rows),
    }
