"""PURE001 negative: ``__init__`` may read configuration; ``step`` stays pure."""

import os

from repro.sim.kernels import ScalarKernel

_WINDOW_SCALE = 2.0


class ConfiguredKernel(ScalarKernel):
    def __init__(self):
        self.fast = bool(os.environ.get("REPRO_FAST"))

    def step(self, state):
        return state * _WINDOW_SCALE
