"""PURE001 positive: a tick path reads the process environment."""

import os

from repro.sim.kernels import ScalarKernel


class EnvGatedKernel(ScalarKernel):
    def step(self, state):
        if os.environ.get("REPRO_FORCE_SCALAR"):
            return state
        return state
