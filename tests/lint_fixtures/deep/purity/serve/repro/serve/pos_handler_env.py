"""PURE001 positive: serve handlers consulting the process environment.

Resolves to module ``repro.serve.pos_handler_env`` (path segments after
the ``repro`` directory), which the rule covers: any environment read
outside ``repro.serve.config`` is flagged — a handler's answer must be
a function of the request and the startup config, or served digests
stop being reproducible from the request alone.
"""

import os


class StatsHandler:
    def handle(self, request: dict) -> dict:
        if os.environ.get("REPRO_SERVE_DEBUG"):  # flagged: ambient read
            return {"debug": True, "request": request}
        return {"debug": False, "request": request}


def pick_workers(default: int) -> int:
    return int(os.getenv("REPRO_SERVE_WORKERS", default))  # flagged
