"""PURE001 negative: ``repro.serve.config`` is the sanctioned reader.

Startup configuration parsing is the one place the daemon may consult
the environment — it happens once, before the server binds, and the
resulting config object is what every handler answers from.
"""

import os


def from_env(overrides: dict | None = None) -> dict:
    host = os.environ.get("REPRO_SERVE_HOST", "127.0.0.1")
    port = int(os.getenv("REPRO_SERVE_PORT", "8472"))
    doc = {"host": host, "port": port}
    doc.update(overrides or {})
    return doc
