"""PURE001 positive: a tick path mutates a module-level container."""

from repro.sim.kernels import VectorKernel

_CACHE = {}


class CachingKernel(VectorKernel):
    def step(self, state):
        _CACHE.update(last=state)
        return state
