"""PURE001 positive: a tick path rebinds module state via ``global``."""

from repro.sim.kernels import VectorKernel

_step_count = 0


class CountingKernel(VectorKernel):
    def step(self, state):
        global _step_count
        _step_count = _step_count + 1
        return state
