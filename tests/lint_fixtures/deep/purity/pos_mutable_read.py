"""PURE001 positive: a tick path reads reassigned module state."""

from repro.sim.kernels import ScalarKernel

_MODE = "fast"
_MODE = "slow"


class ModeKernel(ScalarKernel):
    def step(self, state):
        if _MODE == "slow":
            return state
        return state
