"""PURE001 negative: reading constants and imports is pure."""

import math

from repro.sim.kernels import VectorKernel

_BETA = 0.7


class SteadyKernel(VectorKernel):
    def step(self, state):
        return math.floor(state * _BETA)
