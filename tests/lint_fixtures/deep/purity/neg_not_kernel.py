"""PURE001 negative: non-kernel classes are outside the rule's scope."""

import os

_MODE = "fast"
_MODE = "slow"


class Configurator:
    def refresh(self):
        return os.environ.get("REPRO_MODE", _MODE)
