"""PURE001 negative: an environment-free QUIC pacer module.

Everything is a function of constructor arguments; nothing ambient.
"""


class FixedPacer:
    def __init__(self, slack: float) -> None:
        self.slack = slack

    def release_slack(self, zerocopy: bool) -> float:
        return self.slack if zerocopy else self.slack / 2
