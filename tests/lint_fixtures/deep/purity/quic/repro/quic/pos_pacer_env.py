"""PURE001 positive: a QUIC pacer consulting the process environment.

Resolves to module ``repro.quic.pos_pacer_env`` (path segments after
the ``repro`` directory), which the rule covers wholesale: the QUIC
package has no sanctioned environment reader, because its pacers and
observers ship into shard workers — an ambient read here could give
two shards different release schedules for byte-identical flow specs.
"""

import os


class DebugPacer:
    def release_slack(self, zerocopy: bool) -> float:
        if os.environ.get("REPRO_QUIC_SMOOTH"):  # flagged: ambient read
            return 0.0
        return 1.0


def default_bucket_bytes() -> int:
    return int(os.getenv("REPRO_QUIC_BUCKET", 65536))  # flagged
