"""RNG001 negative: a parameter label resolved through one call-graph hop."""


def make_stream(factory, label):
    return factory.stream(label)


def build(factory):
    return make_stream(factory, "wrapped-fixture")
