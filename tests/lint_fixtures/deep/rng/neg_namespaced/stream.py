"""RNG001 negative: a single site owning a ``prefix:`` namespace."""


def task_stream(factory, name):
    return factory.stream(f"taskfix:{name}")
