"""RNG001 positive (2/2): "buckeroo" and "plumless" share crc32 1306201125."""


def seed_burst(factory):
    return factory.stream("buckeroo")
