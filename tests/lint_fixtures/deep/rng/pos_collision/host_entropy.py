"""RNG001 positive (1/2): this label crc32-collides with buckeroo_entropy.py."""


def seed_host(factory):
    return factory.stream("plumless")
