"""RNG001 positive (1/2): two sites feed the same dynamic namespace."""


def stream_for(factory, ident):
    return factory.stream(f"shard:{ident}")
