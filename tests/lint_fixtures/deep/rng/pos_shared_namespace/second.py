"""RNG001 positive (2/2): the second site sharing the ``shard:`` namespace."""


def stream_other(factory, ident):
    return factory.stream(f"shard:{ident}")
