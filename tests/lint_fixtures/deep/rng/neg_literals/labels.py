"""RNG001 negative: literal and constant labels, no collisions."""

HOST_LABEL = "hostjitter-fixture"


def streams(factory):
    a = factory.stream(HOST_LABEL)
    b = factory.stream("burst-fixture")
    c = factory.fork("fork-fixture")
    return a, b, c
