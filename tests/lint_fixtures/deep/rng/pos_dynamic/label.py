"""RNG001 positive: label built from a runtime value, no namespace."""


def jitter(factory, flow_id):
    return factory.stream("flow" + flow_id)
