"""SHARD001 positive: ``+=`` accumulation inside a loop over a dict."""


def fold_goodput():
    total = 0.0
    counts = {"a": 1.0, "b": 2.0}
    for value in counts.values():
        total += value
    return total
