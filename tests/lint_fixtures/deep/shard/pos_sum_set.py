"""SHARD001 positive: ``sum`` over a name the dataflow resolved to a set.

DET002's syntactic check only sees literal set displays in iteration
position; the dataflow layer follows the binding.
"""


def total_rtt():
    pending = {3.0, 5.0, 7.0}
    return sum(pending)
