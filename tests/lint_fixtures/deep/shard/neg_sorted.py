"""SHARD001 negative: ``sorted(...)`` makes the fold order explicit."""


def fold_sorted():
    total = 0.0
    counts = {"a": 1.0, "b": 2.0}
    for value in sorted(counts.values()):
        total += value
    return total + sum(sorted(counts))
