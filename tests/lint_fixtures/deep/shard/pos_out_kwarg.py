"""SHARD001 positive: ufunc ``out=`` targeting a parameter."""

import numpy as np


def scale_in_place(rates, scale):
    np.multiply(rates, scale, out=rates)
    return rates
