"""SHARD001 negative: positional containers reduce in index order."""


def fold_list(samples):
    partials = [1.0, 2.5, 4.0]
    fresh = [s * 2.0 for s in samples]
    return sum(partials) + sum(fresh)
