"""SHARD001 positive: subscript store into a caller-owned array."""


def apply_pacing(rates, scale):
    for i in range(len(rates)):
        rates[i] = rates[i] * scale
    return rates
