"""SHARD001 negative: writing into a locally created array is fine."""


def doubled(rates):
    fresh = list(rates)
    for i in range(len(fresh)):
        fresh[i] = fresh[i] * 2.0
    return fresh
