"""SHARD001 driver exemption: only ``run`` in sim/flowsim.py is exempt.

The ``repro/sim/`` path segments make this fixture resolve as the
driver module; the sanctioned ``run`` loop may fold into caller arrays,
but every *other* function in the module is ordinary shardable code.
"""


def run(goodput, delivered, elapsed):
    for i in range(len(goodput)):
        goodput[i] = delivered[i] / elapsed
    return goodput


def helper_fold(pace, scale):
    for i in range(len(pace)):
        pace[i] = pace[i] * scale
    return pace
