"""IMP001 positive: simulation core importing the orchestration layer."""

from repro.runner.scheduler import Scheduler


def place(flows):
    return Scheduler, flows
