"""IMP001 positive (2/2): the edge that closes the cycle."""

from repro.alpha import entry


def helper():
    return entry
