"""IMP001 positive (1/2): half of a two-module import cycle."""

from repro.beta import helper


def entry():
    return helper()
