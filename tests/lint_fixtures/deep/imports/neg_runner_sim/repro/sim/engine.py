"""IMP001 negative companion: the imported simulation module."""


def step():
    return 0
