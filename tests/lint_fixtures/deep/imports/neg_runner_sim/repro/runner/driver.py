"""IMP001 negative: the orchestration layer may import sim."""

from repro.sim.engine import step


def run():
    return step
