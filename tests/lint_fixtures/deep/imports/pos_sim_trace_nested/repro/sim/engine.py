"""IMP001 positive: a function-local trace import still runs in the shard."""


def attach(recorder):
    from repro.trace.bus import TraceBus

    return TraceBus, recorder
