"""IMP001 positive: simulation core importing the trace layer."""

from repro.trace.bus import TraceBus


def engine(recorder):
    return TraceBus, recorder
