"""IMP001 negative (1/2): top-level half of a would-be cycle."""

from repro.delta import helper


def entry():
    return helper
