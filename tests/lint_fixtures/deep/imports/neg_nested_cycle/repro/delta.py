"""IMP001 negative (2/2): a deferred import is the sanctioned cycle-breaker."""


def helper():
    from repro.gamma import entry

    return entry
