"""Fixture: EXP001 — a fig module missing registry and benchmark wiring.

This module is deliberately absent from the sibling registry.py and has
no benchmarks/test_bench_fig99*.py in the fixture project root, so
EXP001 must emit two violations anchored here — and no other rule may
fire anywhere in this fixture project.
"""


class Fig99Unwired:
    exp_id = "fig99"
    title = "an experiment nobody can run"
