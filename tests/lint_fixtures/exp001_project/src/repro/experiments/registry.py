"""Fixture registry that (deliberately) imports no fig modules at all."""

_CLASSES: list = []
