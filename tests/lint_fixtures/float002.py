"""Fixture: FLOAT002 — simulation time accumulated with ``+= dt``.

Both accumulations below must be flagged by FLOAT002 and by no other
rule: one adds a bare ``dt`` name, one an attribute tick duration.
"""


class Clock:
    def __init__(self, profile) -> None:
        self.now = 0.0
        self.profile = profile

    def advance(self, dt: float) -> None:
        self.now += dt

    def advance_one_tick(self) -> None:
        self.now += self.profile.tick
