"""Fixture: FLOAT001 — exact equality between float expressions.

The comparison below must be flagged by FLOAT001 and by no other rule.
"""


def link_is_idle(rate_bytes_per_sec: float) -> bool:
    return rate_bytes_per_sec == 0.0
