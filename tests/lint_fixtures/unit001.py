"""Fixture: UNIT001 — magic unit constants instead of repro.core.units.

Both the bare 1e9 and the `* 8` bits<->bytes factor must be flagged by
UNIT001 and by no other rule.
"""


def gbytes_to_bits_per_sec(gbytes_per_sec: float) -> float:
    return gbytes_per_sec * 1e9 * 8
