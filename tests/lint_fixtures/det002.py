"""Fixture: DET002 — ordering derived from hash() and bare-set iteration.

Each construct below must be flagged by DET002 and by no other rule.
"""


def unstable_schedule(flows: list) -> list:
    order = sorted(flows, key=hash)
    for flow in set(flows):
        order.append(flow)
    return order
