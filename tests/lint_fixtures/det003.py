"""Fixture: DET003 — iterating ambient process state (os.environ).

The ``for`` loop over ``os.environ`` and the comprehension over a dict
copied from it must both be flagged by DET003 and by no other rule.
Reading a named variable with ``os.environ.get`` stays clean.
"""

import os

allowed = os.environ.get("REPRO_CACHE_DIR", "")  # fine: named read


def dump_everything() -> list[str]:
    lines = []
    for key in os.environ:  # fires: enumerates the whole environment
        lines.append(key)
    return lines


def snapshot_names() -> list[str]:
    env = dict(os.environ)
    return [k for k in env.keys()]  # fires: comprehension over a copy
