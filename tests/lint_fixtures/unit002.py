"""Fixture: UNIT002 — decimal-round literals on byte-count sysctls.

Both the comparison and the assignment write "2 MB" / "0.5 MB" as
decimal-round byte counts, the classic binary-vs-decimal mixup around
``net.core.*`` tuning.  UNIT002 (and no other rule) must flag both.
"""


class _Sysctls:
    optmem_max = 20480


def undersized(sysctls: _Sysctls) -> bool:
    # fires: decimal "2 MB" compared against a binary byte sysctl
    return sysctls.optmem_max < 2000000


def detune(sysctls: _Sysctls) -> None:
    # fires: decimal "0.5 MB" assigned to a binary byte sysctl
    sysctls.rmem_max = 500000
