"""Fixture: DET001 — wall-clock time and process-global randomness.

Each line below must be flagged by DET001 and by no other rule.
"""

import random
import time


def nondeterministic_jitter() -> float:
    started = time.time()
    return started + random.random()
