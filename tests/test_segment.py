"""Segment geometry: MSS, wire efficiency, GSO/GRO batch sizing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.tcp.segment import SegmentGeometry


class TestMss:
    def test_mss_9000(self):
        assert SegmentGeometry(mtu=9000).mss == 8960

    def test_mss_1500(self):
        assert SegmentGeometry(mtu=1500).mss == 1460

    def test_ipv6_headers_larger(self):
        v4 = SegmentGeometry(mtu=9000)
        v6 = SegmentGeometry(mtu=9000, ipv6=True)
        assert v6.mss == v4.mss - 20

    def test_tiny_mtu_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentGeometry(mtu=40)


class TestWireEfficiency:
    def test_9k_mtu_efficiency(self):
        eff = SegmentGeometry(mtu=9000).wire_efficiency
        assert 0.985 < eff < 0.995

    def test_1500_mtu_efficiency(self):
        eff = SegmentGeometry(mtu=1500).wire_efficiency
        assert 0.94 < eff < 0.96

    def test_goodput_wire_roundtrip(self):
        g = SegmentGeometry(mtu=9000)
        rate = 6.25e9
        assert g.wire_to_goodput(g.goodput_to_wire(rate)) == pytest.approx(rate)

    @given(st.integers(min_value=576, max_value=9216))
    def test_efficiency_below_one(self, mtu):
        g = SegmentGeometry(mtu=mtu)
        assert 0 < g.wire_efficiency < 1

    @given(st.integers(min_value=576, max_value=9216))
    def test_bigger_mtu_more_efficient(self, mtu):
        if mtu < 9216:
            a = SegmentGeometry(mtu=mtu).wire_efficiency
            b = SegmentGeometry(mtu=mtu + 1).wire_efficiency
            assert b > a


class TestGsoGro:
    def test_segments_per_batch(self):
        g = SegmentGeometry(mtu=9000, gso_size=65536)
        assert g.segments_per_gso_batch == pytest.approx(65536 / 8960)

    def test_big_tcp_batch(self):
        g = SegmentGeometry(mtu=9000, gso_size=153600)
        assert g.segments_per_gso_batch > 17

    def test_gso_below_mss_rejected(self):
        with pytest.raises(ConfigurationError):
            SegmentGeometry(mtu=9000, gso_size=1000)

    def test_effective_gro_capped_by_arrival_rate(self):
        g = SegmentGeometry(mtu=9000, gro_size=65536)
        slow = g.effective_gro_batch(arrival_rate=1e6, rtt=0.05)
        fast = g.effective_gro_batch(arrival_rate=6e9, rtt=0.05)
        assert slow < fast == 65536

    def test_effective_gro_floor_is_one_mss(self):
        g = SegmentGeometry(mtu=9000)
        assert g.effective_gro_batch(arrival_rate=0.0, rtt=0.05) == g.mss

    @given(st.floats(min_value=0, max_value=25e9))
    def test_effective_gro_bounded(self, rate):
        g = SegmentGeometry(mtu=9000, gro_size=153600)
        got = g.effective_gro_batch(rate, 0.05)
        assert g.mss <= got <= 153600

    def test_packets_for(self):
        g = SegmentGeometry(mtu=9000)
        assert g.packets_for(8960 * 10) == pytest.approx(10)
