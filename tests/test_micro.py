"""Packet-level micro simulator: unit behaviour + TCP correctness."""

from __future__ import annotations

import pytest

from repro.core import units
from repro.core.engine import Engine
from repro.micro import LinkQueue, MicroReceiver, MicroSimulation
from repro.micro.packets import Ack, Segment


class TestLinkQueue:
    def test_serialization_and_delay(self):
        eng = Engine()
        arrivals = []
        q = LinkQueue(engine=eng, rate=1e6, delay=0.5,
                      deliver=lambda p: arrivals.append(eng.now))
        q.send(Segment(seq=0, length=1000, sent_at=0.0))
        eng.run()
        # 1000 B at 1 MB/s = 1 ms serialization + 500 ms propagation
        assert arrivals == [pytest.approx(0.501)]

    def test_fifo_order(self):
        eng = Engine()
        got = []
        q = LinkQueue(engine=eng, rate=1e6, delay=0.0,
                      deliver=lambda p: got.append(p.seq))
        for seq in (0, 1000, 2000):
            q.send(Segment(seq=seq, length=1000, sent_at=0.0))
        eng.run()
        assert got == [0, 1000, 2000]

    def test_tail_drop(self):
        eng = Engine()
        q = LinkQueue(engine=eng, rate=1e3, delay=0.0, buffer_bytes=1500)
        assert q.send(Segment(seq=0, length=1000, sent_at=0.0))
        assert not q.send(Segment(seq=1000, length=1000, sent_at=0.0))
        assert q.dropped_packets == 1

    def test_backlog_conservation(self):
        eng = Engine()
        q = LinkQueue(engine=eng, rate=1e6, delay=0.0, buffer_bytes=1e9)
        for i in range(10):
            q.send(Segment(seq=i * 1000, length=1000, sent_at=0.0))
        eng.run()
        assert q.backlog == 0
        assert q.delivered_bytes == 10_000


class TestReceiver:
    def mk(self):
        eng = Engine()
        acks = []
        ack_path = LinkQueue(engine=eng, rate=1e9, delay=0.0,
                             deliver=lambda a: acks.append(a),
                             size_of=lambda p: 60.0)
        return eng, acks, MicroReceiver(engine=eng, ack_path=ack_path)

    def test_in_order_delivery(self):
        eng, acks, rcv = self.mk()
        rcv.on_segment(Segment(seq=0, length=100, sent_at=0.0))
        rcv.on_segment(Segment(seq=100, length=100, sent_at=0.0))
        eng.run()
        assert rcv.rcv_next == 200
        assert acks[-1].cum_ack == 200

    def test_out_of_order_buffered_and_drained(self):
        eng, acks, rcv = self.mk()
        rcv.on_segment(Segment(seq=100, length=100, sent_at=0.0))  # gap!
        eng.run()
        assert acks[-1].cum_ack == 0 and acks[-1].dup_hint == 1
        rcv.on_segment(Segment(seq=0, length=100, sent_at=0.0))  # fills
        eng.run()
        assert rcv.rcv_next == 200
        assert rcv.delivered_bytes == 200

    def test_sack_holes_reported(self):
        eng, acks, rcv = self.mk()
        # deliver 0, then 200 and 400 (holes at 100 and 300)
        for seq in (0, 200, 400):
            rcv.on_segment(Segment(seq=seq, length=100, sent_at=0.0))
        eng.run()
        assert acks[-1].sack_holes == (100, 300)


class TestEndToEnd:
    def test_window_limited_throughput_matches_theory(self):
        res = MicroSimulation(
            rate_gbps=10, rtt_ms=20, max_window_bytes=2_500_000
        ).run(4.0)
        theory = units.to_gbps(2_500_000 / 0.02)
        assert res.goodput_gbps == pytest.approx(theory, rel=0.06)
        assert res.drops == 0

    def test_paced_flow_tracks_pacing_rate(self):
        res = MicroSimulation(rate_gbps=10, rtt_ms=20, pacing_gbps=6).run(4.0)
        assert res.goodput_gbps == pytest.approx(6.0, rel=0.06)
        assert res.retransmissions == 0

    def test_app_limited_flow(self):
        res = MicroSimulation(rate_gbps=10, rtt_ms=20, app_limit_gbps=5).run(4.0)
        assert res.goodput_gbps == pytest.approx(5.0, rel=0.06)

    def test_unpaced_overshoot_into_small_buffer_loses(self):
        res = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=1).run(5.0)
        assert res.drops > 0
        assert res.retransmissions > 0
        assert res.loss_events >= 1
        assert res.goodput_gbps > 1.0  # recovers, not stalled

    def test_bigger_buffer_more_throughput_unpaced(self):
        small = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=1).run(6.0)
        big = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=25).run(6.0)
        assert big.goodput_gbps > small.goodput_gbps

    def test_pacing_eliminates_losses_that_unpaced_takes(self):
        """The paper's central mechanism at packet scale."""
        unpaced = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=2).run(5.0)
        paced = MicroSimulation(
            rate_gbps=10, rtt_ms=20, buffer_mb=2, pacing_gbps=9
        ).run(5.0)
        assert unpaced.drops > 0
        assert paced.drops == 0
        assert paced.goodput_gbps > unpaced.goodput_gbps

    def test_bbr_self_paces(self):
        res = MicroSimulation(rate_gbps=5, rtt_ms=20, buffer_mb=12, cc="bbr3").run(3.0)
        assert res.goodput_gbps > 3.0

    def test_deterministic(self):
        a = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=1).run(3.0)
        b = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=1).run(3.0)
        assert a.delivered_bytes == b.delivered_bytes
        assert a.retransmissions == b.retransmissions


class TestCrossValidation:
    """The micro (packet) and fluid (tick) models must agree where
    their assumptions overlap — steady, clean flows."""

    def fluid_run(self, pacing_gbps, rtt_ms, rate_gbps=10.0):
        from repro.core.rng import RngFactory
        from repro.net.path import NetworkPath
        from repro.net.switch import SwitchModel
        from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
        from repro.tcp.pacing import PacingConfig
        from repro.testbeds.profiles import paper_host

        # an over-provisioned host so the network is the only constraint
        snd = paper_host("s", cpu="intel", nic="cx5", kernel="6.8")
        rcv = paper_host("r", cpu="intel", nic="cx5", kernel="6.8")
        path = NetworkPath(
            name="xval",
            bottleneck=__import__("repro.net.link", fromlist=["Link"]).Link.of_gbps(
                "l", rate_gbps, delay_ms=rtt_ms / 2
            ),
            rtt_sec=rtt_ms / 1e3,
            switch=SwitchModel("big", 1e9),
        )
        flows = [FlowSpec(pacing=PacingConfig.fq_rate_gbps(pacing_gbps))]
        sim = FlowSimulator(snd, rcv, path, flows,
                            SimProfile(duration=8, tick=0.004, omit=2),
                            RngFactory(5))
        return sim.run().total_gbps

    @pytest.mark.parametrize("pace", [4.0, 6.0, 8.0])
    def test_paced_flow_agreement(self, pace):
        micro = MicroSimulation(rate_gbps=10, rtt_ms=20, pacing_gbps=pace).run(4.0)
        fluid = self.fluid_run(pacing_gbps=pace, rtt_ms=20)
        assert micro.goodput_gbps == pytest.approx(fluid, rel=0.08)
