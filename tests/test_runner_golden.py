"""Golden characterization tests for the parallel runner.

The committed files under ``tests/golden/`` pin a row digest for every
registered experiment at ``GOLDEN_CONFIG`` fidelity.  Three campaign
modes must reproduce them exactly:

* serial in-process (``jobs=1``, no cache) — the baseline semantics
  ``repro experiment`` has always had;
* parallel (``jobs=4``) across real worker processes;
* cache-hit (warm rerun over the parallel campaign's cache directory),
  which additionally must execute *zero* simulator invocations.

Any drift means parallelism/caching changed a number — the one thing
this subsystem promises never to do.
"""

from __future__ import annotations

import pytest

from repro.experiments import all_experiment_ids, run_experiment
from repro.runner import RunnerConfig, run_tasks, run_experiments, TaskSpec

from tests._golden import GOLDEN_CONFIG, golden_ids, load_golden

ALL_IDS = all_experiment_ids()


class TestGoldenFiles:
    def test_every_experiment_has_a_golden_file(self):
        assert golden_ids() == sorted(ALL_IDS)

    def test_golden_files_record_the_golden_config(self):
        for exp_id in golden_ids():
            assert load_golden(exp_id)["config"] == GOLDEN_CONFIG.to_dict()


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_serial_reproduces_golden(exp_id):
    """A plain serial run (the `repro experiment` path) matches golden."""
    result = run_experiment(exp_id, GOLDEN_CONFIG)
    golden = load_golden(exp_id)
    assert result.digest() == golden["digest"], (
        f"{exp_id}: serial rows drifted from tests/golden/{exp_id}.json — "
        "if the simulator change is intentional, regenerate with "
        "`python -m tests.make_golden`"
    )
    assert len(result.rows) == golden["n_rows"]
    assert list(result.columns) == golden["columns"]


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_parallel_jobs4_reproduces_golden(golden_campaign, exp_id):
    """The session's jobs=4 process-pool campaign matches golden."""
    task = golden_campaign.by_id(exp_id)
    assert not task.cached  # the campaign fixture runs against a cold cache
    assert task.result.digest() == load_golden(exp_id)["digest"], (
        f"{exp_id}: parallel rows differ from the committed golden digest"
    )


class TestCacheHitCampaign:
    def test_warm_rerun_is_pure_cache_with_zero_simulator_invocations(
        self, golden_campaign, campaign_cache_dir, monkeypatch
    ):
        """Rerunning over the warm cache touches the simulator zero times.

        ``Iperf3.run`` is the single choke point every experiment's
        measurements flow through; poisoning it proves cache hits never
        reach the simulator.  jobs=1 keeps execution (if any happened —
        it must not) in-process where the poison patch applies.
        """
        import repro.tools.iperf3 as iperf3_mod

        def poisoned(self, *a, **kw):  # pragma: no cover - must not run
            raise AssertionError("simulator invoked during cache-hit run")

        monkeypatch.setattr(iperf3_mod.Iperf3, "run", poisoned)
        report = run_experiments(
            ALL_IDS,
            config=GOLDEN_CONFIG,
            runner=RunnerConfig(jobs=1, cache_dir=campaign_cache_dir),
        )
        assert report.all_cached
        assert report.executed == 0
        for task in report.tasks:
            assert task.cached
            assert task.result.digest() == load_golden(task.spec.exp_id)["digest"]

    def test_no_cache_flag_bypasses_a_warm_cache(
        self, golden_campaign, campaign_cache_dir
    ):
        """``--no-cache`` must execute even when every key is warm."""
        report = run_tasks(
            [TaskSpec("var", GOLDEN_CONFIG)],
            RunnerConfig(jobs=1, use_cache=False, cache_dir=campaign_cache_dir),
        )
        assert report.cache_hits == 0
        assert report.executed == 1
        assert report.results[0].digest() == load_golden("var")["digest"]

    def test_config_change_misses_the_cache(
        self, golden_campaign, campaign_cache_dir
    ):
        """Any HarnessConfig field is part of the content address."""
        import dataclasses

        other = dataclasses.replace(GOLDEN_CONFIG, seed=GOLDEN_CONFIG.seed + 1)
        report = run_tasks(
            [TaskSpec("var", other)],
            RunnerConfig(jobs=1, cache_dir=campaign_cache_dir),
        )
        assert report.executed == 1
