"""Flow simulator integration behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import units
from repro.core.errors import ConfigurationError, FeatureUnavailableError
from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.tcp.pacing import PacingConfig
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed

PROFILE = SimProfile(duration=8.0, tick=0.004, omit=2.0)


def amlight_sim(path="wan54", flows=None, kernel="6.8", seed=5, **tb_kw):
    tb = AmLightTestbed(kernel=kernel, **tb_kw)
    snd, rcv = tb.host_pair()
    return FlowSimulator(
        snd, rcv, tb.path(path), flows or [FlowSpec()], PROFILE, RngFactory(seed)
    )


class TestBasicConvergence:
    def test_paced_flow_hits_pacing_rate(self):
        sim = amlight_sim(flows=[
            FlowSpec(pacing=PacingConfig.fq_rate_gbps(20), zerocopy=True)
        ])
        res = sim.run()
        assert res.total_gbps == pytest.approx(20.0, rel=0.03)

    def test_unpaced_default_cpu_bound(self):
        res = amlight_sim().run()
        assert 28 < res.total_gbps < 42  # sender-CPU-bound on the WAN

    def test_lan_faster_than_wan_default(self):
        lan = amlight_sim(path="lan").run()
        wan = amlight_sim(path="wan104").run()
        assert lan.total_gbps > wan.total_gbps * 1.2

    def test_multiple_flows_share(self):
        flows = [FlowSpec(pacing=PacingConfig.fq_rate_gbps(5)) for _ in range(4)]
        res = amlight_sim(flows=flows).run()
        assert res.total_gbps == pytest.approx(20.0, rel=0.05)
        assert np.allclose(res.per_flow_gbps, 5.0, rtol=0.05)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = amlight_sim(seed=9).run(rep=2)
        b = amlight_sim(seed=9).run(rep=2)
        assert a.total_goodput == b.total_goodput
        assert a.retransmit_segments == b.retransmit_segments

    def test_different_reps_differ_slightly(self):
        sim = amlight_sim(seed=9)
        a, b = sim.run(rep=0), sim.run(rep=1)
        assert a.total_goodput != b.total_goodput
        assert abs(a.total_gbps - b.total_gbps) < 0.2 * a.total_gbps


class TestFeatureValidation:
    def test_zerocopy_needs_recent_kernel(self):
        tb = AmLightTestbed(kernel="5.10")
        snd, rcv = tb.host_pair()
        from repro.host.kernel import Kernel

        snd = snd.set(kernel=Kernel.named("4.9"))
        with pytest.raises(FeatureUnavailableError):
            FlowSimulator(snd, rcv, tb.path("lan"), [FlowSpec(zerocopy=True)], PROFILE)

    def test_bigtcp_plus_zerocopy_refused(self):
        tb = AmLightTestbed(kernel="6.8", big_tcp_size=153600)
        snd, rcv = tb.host_pair()
        with pytest.raises(FeatureUnavailableError):
            FlowSimulator(snd, rcv, tb.path("lan"), [FlowSpec(zerocopy=True)], PROFILE)

    def test_empty_flows_rejected(self):
        tb = AmLightTestbed()
        snd, rcv = tb.host_pair()
        with pytest.raises(ConfigurationError):
            FlowSimulator(snd, rcv, tb.path("lan"), [], PROFILE)

    def test_bad_cc_rejected_early(self):
        tb = AmLightTestbed()
        snd, rcv = tb.host_pair()
        with pytest.raises(ConfigurationError):
            FlowSimulator(snd, rcv, tb.path("lan"), [FlowSpec(cc="vegas")], PROFILE)


class TestMechanisms:
    def test_zerocopy_lowers_sender_cpu(self):
        paced = [FlowSpec(pacing=PacingConfig.fq_rate_gbps(30))]
        paced_zc = [FlowSpec(pacing=PacingConfig.fq_rate_gbps(30), zerocopy=True)]
        plain = amlight_sim(flows=paced).run()
        zc = amlight_sim(flows=paced_zc).run()
        assert plain.total_gbps == pytest.approx(zc.total_gbps, rel=0.05)
        assert zc.sender_cpu.total_pct < 0.7 * plain.sender_cpu.total_pct

    def test_skip_rx_copy_lowers_receiver_cpu(self):
        normal = amlight_sim(flows=[FlowSpec(pacing=PacingConfig.fq_rate_gbps(30))]).run()
        skipped = amlight_sim(
            flows=[FlowSpec(pacing=PacingConfig.fq_rate_gbps(30), skip_rx_copy=True)]
        ).run()
        assert skipped.receiver_cpu.app_pct < 0.3 * normal.receiver_cpu.app_pct

    def test_window_limited_by_socket_buffers(self):
        """Stock tcp_wmem caps WAN throughput (the classic tuning fail)."""
        from repro.host.sysctl import Sysctls

        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        snd = snd.set(sysctls=Sysctls())  # stock buffers
        rcv = rcv.set(sysctls=Sysctls())
        sim = FlowSimulator(snd, rcv, tb.path("wan104"), [FlowSpec()], PROFILE, RngFactory(3))
        res = sim.run()
        # window-limited: ~3 MB / 104 ms ≈ 0.23 Gbps
        assert res.total_gbps < 1.0

    def test_flow_control_path_has_no_ring_drops(self):
        es = ESnetTestbed()
        snd, rcv = es.production_host_pair()
        flows = [FlowSpec() for _ in range(8)]
        sim = FlowSimulator(snd, rcv, es.production_path(), flows, PROFILE, RngFactory(3))
        res = sim.run()
        assert res.total_gbps > 85  # near line rate despite no pacing

    def test_unpatched_fq_rate_wraps(self):
        flows = [FlowSpec(
            pacing=PacingConfig.fq_rate_gbps(50, patched=False), zerocopy=True
        )]
        res = amlight_sim(flows=flows).run()
        assert res.total_gbps == pytest.approx(15.6, rel=0.05)

    def test_bbr_flow_runs(self):
        res = amlight_sim(flows=[FlowSpec(cc="bbr3")]).run()
        assert res.total_gbps > 10

    def test_cpu_totals_can_exceed_100pct(self):
        res = amlight_sim(path="lan").run()
        assert res.receiver_cpu.total_pct > 100.0
