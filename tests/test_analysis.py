"""Analysis helpers: stats, paper claims, markdown rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis.paper import PAPER_CLAIMS, claims_for
from repro.analysis.report import result_to_markdown
from repro.analysis.stats import ratio, summarize, within
from repro.experiments.base import ExperimentResult


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3 and s.mean == 2.0
        assert s.min == 1.0 and s.max == 3.0
        assert s.stdev == pytest.approx(1.0)

    def test_summarize_single(self):
        assert summarize([5.0]).stdev == 0.0

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ratio_guard(self):
        assert ratio(1.0, 0.0) == math.inf
        assert ratio(6.0, 3.0) == 2.0

    def test_within(self):
        assert within(104, 100, 0.05)
        assert not within(110, 100, 0.05)
        assert within(0.01, 0, 0.05)


class TestPaperClaims:
    def test_registry_nonempty(self):
        assert len(PAPER_CLAIMS) >= 15

    def test_claims_for(self):
        fig05 = claims_for("fig05")
        assert {c.claim_id for c in fig05} >= {"zc-pace-gain", "bigtcp-gain"}
        assert claims_for("nonexistent") == []

    def test_all_kinds_valid(self):
        assert {c.kind for c in PAPER_CLAIMS} <= {"ratio", "value", "ordering"}

    def test_value_claims_have_targets(self):
        for c in PAPER_CLAIMS:
            if c.kind in ("ratio", "value"):
                assert c.paper_value is not None, c.claim_id


class TestRendering:
    def mk_result(self):
        r = ExperimentResult(
            exp_id="fig05",
            title="demo",
            paper_ref="Figure 5",
            columns=["path", "gbps"],
        )
        r.add_row(path="lan", gbps=51.3)
        r.add_row(path="wan54", gbps=35.0)
        return r

    def test_render_text(self):
        text = self.mk_result().render()
        assert "Figure 5" in text
        assert "51.3" in text

    def test_markdown(self):
        md = result_to_markdown(self.mk_result())
        assert md.startswith("### fig05")
        assert "| path | gbps |" in md
        assert "zc-pace-gain" in md  # claims listed

    def test_row_by(self):
        r = self.mk_result()
        assert r.row_by(path="wan54")["gbps"] == 35.0
        with pytest.raises(KeyError):
            r.row_by(path="mars")

    def test_column(self):
        assert self.mk_result().column("path") == ["lan", "wan54"]
