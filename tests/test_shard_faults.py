"""Fault handling for the sharded simulator's process transport.

Three promises:

* a worker crashing mid-tick breaks the exchange barrier, the
  coordinator tears the attempt down, and the *retry* is byte-identical
  to a run that never crashed (every attempt rebuilds its RNG streams
  from the root seed);
* every shared-memory segment of every attempt — including crashed
  ones — is unlinked (no ``/dev/shm`` leaks), proven by re-attaching;
* a crc32 collision between two shard RNG-stream labels raises
  :class:`RngStreamCollisionError` instead of silently correlating
  "independent" block streams.

The crash hook is ``REPRO_SHARD_CRASH_ONCE`` (see
:func:`repro.sim.shard._maybe_crash`): a sentinel path crashes shard 0
exactly once; the reserved value ``always`` crashes every attempt.
"""

from __future__ import annotations

import zlib
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.errors import RngStreamCollisionError
from repro.core.rng import RngFactory
from repro.sim import shard as shard_mod
from repro.sim.flowsim import FlowSpec, SimProfile
from repro.sim.shard import (
    CRASH_ONCE_ENV,
    MAX_ATTEMPTS,
    FlowPopulation,
    ShardCrashError,
    ShardedFlowSimulator,
)
from repro.testbeds.amlight import AmLightTestbed

PROFILE = SimProfile(duration=1.0, tick=0.008, omit=0.25)

#: Distinct strings with the same crc32 (2500815930), found by brute
#: force — the label→entropy mapping the factory must refuse to alias.
CRC32_TWINS = ("shardtest:29685295", "shardtest:32060020")


def _make_sim(seed=7, shards=2):
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    return ShardedFlowSimulator(
        snd, rcv, tb.path("wan54"),
        FlowPopulation.uniform(FlowSpec(), 64),
        PROFILE, RngFactory(seed), shards=shards, mode="process",
    )


def _runs_equal(a, b):
    return (
        np.array_equal(a.per_flow_goodput, b.per_flow_goodput)
        and np.array_equal(a.interval_goodput, b.interval_goodput)
        and a.retransmit_segments == b.retransmit_segments
        and a.loss_events == b.loss_events
        and a.sender_cpu == b.sender_cpu
        and a.receiver_cpu == b.receiver_cpu
        and a.zc_fraction_mean == b.zc_fraction_mean
    )


def _assert_all_unlinked(names):
    assert names, "run recorded no shared-memory segments"
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestWorkerCrashRetry:
    def test_clean_process_run_is_a_single_attempt(self, monkeypatch):
        """Workers exiting after END must not trip the watchdog: the
        end-of-run teardown races the 50 ms liveness poll, and losing
        that race used to abort the release barrier — a phantom crash
        whose retry duplicated every trace event of the run."""
        monkeypatch.delenv(CRASH_ONCE_ENV, raising=False)
        sim = _make_sim()
        sim.run()
        assert len(sim.last_shm_names) == 3

    def test_crash_once_retries_byte_identical(self, tmp_path, monkeypatch):
        clean = _make_sim().run()

        sentinel = tmp_path / "crashed-once"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(sentinel))
        sim = _make_sim()
        retried = sim.run()

        assert sentinel.exists(), "crash hook never fired"
        assert _runs_equal(clean, retried)
        # One crashed attempt + one clean attempt, each with its own
        # exchange/control/accumulator segments — all unlinked.
        assert len(sim.last_shm_names) == 6
        _assert_all_unlinked(sim.last_shm_names)

    def test_persistent_crash_exhausts_attempts_without_leaking(
        self, monkeypatch
    ):
        monkeypatch.setenv(CRASH_ONCE_ENV, "always")
        sim = _make_sim()
        with pytest.raises(ShardCrashError):
            sim.run()
        assert len(sim.last_shm_names) == 3 * MAX_ATTEMPTS
        _assert_all_unlinked(sim.last_shm_names)

    def test_inproc_runs_ignore_the_crash_hook(self, tmp_path, monkeypatch):
        """The hook lives in the worker serve loop: in-process runs
        (runner pool workers, non-POSIX fallbacks) never hit it."""
        sentinel = tmp_path / "never-created"
        monkeypatch.setenv(CRASH_ONCE_ENV, str(sentinel))
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        ShardedFlowSimulator(
            snd, rcv, tb.path("lan"),
            FlowPopulation.uniform(FlowSpec(), 64),
            PROFILE, RngFactory(1), shards=2, mode="inproc",
        ).run()
        assert not sentinel.exists()


class TestRngStreamCollision:
    def test_twins_actually_collide(self):
        a, b = CRC32_TWINS
        assert a != b
        assert zlib.crc32(a.encode()) == zlib.crc32(b.encode())

    def test_colliding_block_labels_raise(self, monkeypatch):
        """Two blocks whose burst labels alias the same crc32 entropy
        must fail loudly — aliased streams would correlate the blocks'
        loss draws while every digest still looked plausible."""
        monkeypatch.setattr(
            shard_mod, "_burst_label", lambda block: CRC32_TWINS[block % 2]
        )
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        sim = ShardedFlowSimulator(
            snd, rcv, tb.path("wan54"),
            FlowPopulation.uniform(FlowSpec(), 64),  # 2 blocks
            PROFILE, RngFactory(5), shards=1, mode="inproc",
        )
        with pytest.raises(RngStreamCollisionError):
            sim.run()
