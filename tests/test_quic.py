"""The QUIC stack: pacers, connections, and the spin-bit observer.

Four families of pins:

* the pacer ladder — every pacer satisfies the driver-side pacing
  protocol, and ``release_slack`` orders the kinds exactly as the
  module promises (interval 0 < token-bucket ~1/3 < chunked ~2/3 <
  none 1), with the token bucket's default depth anchored to the
  kernel model's coarse-internal-pacing slack;
* connection lowering — a :class:`QuicConnection` is rejected unless
  its cc batches and its pacer speaks the protocol, and the duck-typed
  ``flow_release_slack`` hook picks the pacer's slack over the
  :class:`BurstModel` table without perturbing PacingConfig flows;
* the spin-bit observer — fed synthetic ``flow.tick`` streams: clean
  channels bound the estimator error by the edge jitter, impairments
  degrade it the right way, the RNG draw count per edge is fixed
  (stream position is a function of the edge count alone), and
  observation is read-only for the simulation's numbers;
* replay + parity — ``probe.spin`` replay restores the bus clock,
  stays silent when probes are unwanted, renders as Perfetto counter
  tracks, and the registered experiments' digests are invariant to
  the tick kernel and the shard count.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.core import units
from repro.quic import (
    ChunkedPacer,
    IntervalPacer,
    NoPacer,
    PACER_KINDS,
    QuicConnection,
    SpinBitObserver,
    TokenBucketPacer,
    aggregate_quic,
    make_pacer,
    simulate_quic,
)
from repro.quic.spin import (
    EDGE_JITTER_FRACTION,
    replay_spin_probes,
)
from repro.sim.flowsim import SimProfile
from repro.sim.kernels import forced_kernel
from repro.sim.lossmodel import BurstModel, COPY_MODE_SLACK, flow_release_slack
from repro.tcp.pacing import PacingConfig
from repro.testbeds.amlight import AmLightTestbed
from repro.trace.bus import ListSink, TraceBus, tracing
from repro.trace.events import TraceEvent
from repro.trace.export import to_perfetto, validate_perfetto

PROFILE = SimProfile(duration=2.0, tick=0.008, omit=0.5)


# ---------------------------------------------------------------------------
# Pacers
# ---------------------------------------------------------------------------


class TestPacers:
    def test_kinds_ladder_strictly_by_slack(self):
        slacks = [
            make_pacer(k, rate_gbps=None if k == "none" else 19).release_slack(
                True
            )
            for k in PACER_KINDS
        ]
        assert slacks[0] == 0.0 and slacks[-1] == 1.0
        assert all(a < b for a, b in zip(slacks, slacks[1:])), slacks

    def test_default_bucket_anchors_to_kernel_coarse_pacing(self):
        """64 KiB / (64 KiB + 128 KiB) = 1/3 — the saturating curve is
        calibrated to pass through BurstModel's ~0.35 internal-pacing
        slack at the default bucket depth."""
        tb = TokenBucketPacer(rate_bytes_per_sec=1e9)
        assert tb.release_slack(True) == pytest.approx(1 / 3)
        ck = ChunkedPacer(rate_bytes_per_sec=1e9)
        assert ck.release_slack(True) == pytest.approx(2 / 3)

    def test_slack_ignores_zerocopy_except_unpaced(self):
        """Only the unpaced sender's burstiness depends on the copy
        mode — a rate-enforcing pacer's schedule is its own."""
        for kind in PACER_KINDS[:-1]:
            p = make_pacer(kind, rate_gbps=19)
            assert p.release_slack(True) == p.release_slack(False), kind
        none = NoPacer()
        assert none.release_slack(True) == 1.0
        assert none.release_slack(False) == COPY_MODE_SLACK

    def test_driver_protocol(self):
        for kind in PACER_KINDS:
            p = make_pacer(kind, rate_gbps=None if kind == "none" else 19)
            assert isinstance(p.smooths_bursts, bool)
            assert isinstance(p.enabled, bool)
            if kind == "none":
                assert p.effective_rate() is None and not p.enabled
            else:
                assert p.effective_rate() == units.gbps(19) and p.enabled
            assert kind in (p.kind,)
            assert p.describe()

    def test_only_interval_smooths(self):
        assert IntervalPacer(rate_bytes_per_sec=1e9).smooths_bursts
        assert not TokenBucketPacer(rate_bytes_per_sec=1e9).smooths_bursts
        assert not ChunkedPacer(rate_bytes_per_sec=1e9).smooths_bursts
        assert not NoPacer().smooths_bursts

    def test_release_intervals(self):
        iv = IntervalPacer(rate_bytes_per_sec=1500.0 * 100)
        assert iv.release_interval() == pytest.approx(0.01)
        ck = ChunkedPacer(rate_bytes_per_sec=2 ** 20, chunk_bytes=2 ** 18)
        assert ck.release_interval() == pytest.approx(0.25)

    @pytest.mark.parametrize(
        "call",
        [
            lambda: make_pacer("fq"),
            lambda: make_pacer("interval"),
            lambda: make_pacer("none", rate_gbps=19),
            lambda: make_pacer("token-bucket", rate_gbps=0),
            lambda: make_pacer("token-bucket", rate_gbps=19, bucket_bytes=0),
            lambda: make_pacer("chunked", rate_gbps=19, chunk_bytes=-1),
            lambda: make_pacer("interval", rate_gbps=19, packet_bytes=0),
        ],
    )
    def test_construction_errors(self, call):
        with pytest.raises(ConfigurationError):
            call()


# ---------------------------------------------------------------------------
# Connection lowering and the duck-typed slack hook
# ---------------------------------------------------------------------------


class TestQuicConnection:
    def test_lowering_defaults(self):
        spec = QuicConnection().flow_spec()
        assert spec.cc == "cubic"
        assert spec.zerocopy and spec.skip_rx_copy
        assert isinstance(spec.pacing, NoPacer)
        assert spec.label == "quic-none"

    def test_pacer_object_passes_through(self):
        pacer = make_pacer("interval", rate_gbps=19)
        spec = QuicConnection(pacer=pacer).flow_spec()
        assert spec.pacing is pacer

    def test_unbatchable_cc_rejected(self):
        with pytest.raises(ConfigurationError, match="batched cc steppers"):
            QuicConnection(cc="bbr")

    def test_non_pacer_rejected(self):
        with pytest.raises(ConfigurationError, match="release_slack"):
            QuicConnection(pacer=PacingConfig.fq_rate_gbps(19))

    def test_flow_release_slack_prefers_the_pacer_hook(self):
        burst = BurstModel(rng=np.random.default_rng(0))
        tb = TokenBucketPacer(rate_bytes_per_sec=1e9)
        assert flow_release_slack(tb, True, burst) == tb.release_slack(True)

    def test_flow_release_slack_falls_back_to_the_kernel_table(self):
        """PacingConfig has no release_slack, so TCP flows keep the
        BurstModel numbers bit for bit."""
        burst = BurstModel(rng=np.random.default_rng(0))
        for pacing, zerocopy in [
            (PacingConfig.fq_rate_gbps(19), True),
            (PacingConfig.unpaced(), True),
            (PacingConfig.unpaced(), False),
        ]:
            assert flow_release_slack(pacing, zerocopy, burst) == (
                burst.slack_for(pacing.smooths_bursts, pacing.enabled, zerocopy)
            )

    def test_simulators_require_a_connection(self):
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        with pytest.raises(ConfigurationError):
            simulate_quic(snd, rcv, tb.path("wan54"), [])
        with pytest.raises(ConfigurationError):
            aggregate_quic(snd, rcv, tb.path("wan54"), QuicConnection(), 0)


# ---------------------------------------------------------------------------
# Spin-bit observer on synthetic tick streams
# ---------------------------------------------------------------------------


def tick(seq, t, flow=0, rtt=0.05, delivered=1e6):
    return TraceEvent(
        seq, t, "flow", "flow.tick",
        track="syn",
        args={"flow": flow, "rtt": rtt, "delivered": delivered,
              "sent": delivered, "dropped": 0.0},
    )


def feed(obs, *, rtt=0.05, step=0.004, until=2.0, flow=0):
    t, seq = step, 0
    while t <= until:
        obs.write(tick(seq, t, flow=flow, rtt=rtt))
        t += step
        seq += 1


class TestSpinObserver:
    def test_clean_channel_error_bounded_by_edge_jitter(self):
        obs = SpinBitObserver(np.random.default_rng(1))
        feed(obs, rtt=0.05, step=0.004, until=2.0)
        ests = obs.estimates()
        assert len(ests) >= 30
        # Each edge slips by at most EDGE_JITTER_FRACTION of the RTT,
        # so a sample (difference of two edges) errs by at most twice
        # that — plus nothing else on a clean channel.
        assert max(e.err_fraction for e in ests) <= 2 * EDGE_JITTER_FRACTION
        assert obs.error_stats()["median_err_pct"] < 10.0

    def test_true_rtt_is_ground_truth(self):
        obs = SpinBitObserver(np.random.default_rng(1))
        feed(obs, rtt=0.034)
        assert all(e.true_rtt == 0.034 for e in obs.estimates())

    def test_ignores_idle_and_invalid_ticks(self):
        obs = SpinBitObserver(np.random.default_rng(1))
        obs.write(tick(0, 0.1, delivered=0.0))
        obs.write(tick(1, 0.2, rtt=0.0))
        obs.write(TraceEvent(2, 0.3, "flow", "flow.loss", args={"flow": 0}))
        assert obs.estimates() == []
        assert obs.error_stats() == {
            "median_err_pct": 0.0, "p90_err_pct": 0.0, "edges": 0,
        }

    def test_flows_spin_independently(self):
        obs = SpinBitObserver(np.random.default_rng(3))
        for flow, rtt in ((0, 0.05), (1, 0.1)):
            feed(obs, rtt=rtt, flow=flow)
        by_flow = {}
        for e in obs.estimates():
            by_flow.setdefault(e.flow, []).append(e)
        # Half the RTT -> roughly twice the recovered edges.
        assert len(by_flow[0]) > 1.5 * len(by_flow[1])
        assert {e.true_rtt for e in by_flow[1]} == {0.1}

    def test_same_stream_same_estimates(self):
        runs = []
        for _ in range(2):
            obs = SpinBitObserver(
                np.random.default_rng(42), loss_prob=0.3, reorder_prob=0.3
            )
            feed(obs)
            runs.append(obs.estimates())
        assert runs[0] == runs[1]

    def test_loss_stretches_the_tail(self):
        clean = SpinBitObserver(np.random.default_rng(7))
        lossy = SpinBitObserver(np.random.default_rng(7), loss_prob=0.5)
        feed(clean)
        feed(lossy)
        assert (
            lossy.error_stats()["p90_err_pct"]
            > 3 * clean.error_stats()["p90_err_pct"]
        )

    def test_reordering_manufactures_edges(self):
        clean = SpinBitObserver(np.random.default_rng(7))
        noisy = SpinBitObserver(np.random.default_rng(7), reorder_prob=0.5)
        feed(clean)
        feed(noisy)
        assert len(noisy.estimates()) > len(clean.estimates())
        assert (
            noisy.error_stats()["p90_err_pct"]
            > 3 * clean.error_stats()["p90_err_pct"]
        )

    def test_edges_are_monotone_per_flow(self):
        obs = SpinBitObserver(
            np.random.default_rng(9), loss_prob=0.4, reorder_prob=0.4
        )
        feed(obs)
        ts = [t for t, _ in obs._flows[0].edges]
        assert all(a < b for a, b in zip(ts, ts[1:]))
        assert all(e.est_rtt > 0 for e in obs.estimates())

    def test_exactly_five_draws_per_edge(self):
        """The stream position is a function of the edge count alone:
        whatever the impairment branches consume, every observed edge
        costs exactly five variates."""
        obs = SpinBitObserver(
            np.random.default_rng(11), loss_prob=0.2, reorder_prob=0.2
        )
        feed(obs)
        # Count true flips by replaying the clean schedule: first
        # delivering tick seeds the clock, one flip per RTT after.
        ref = SpinBitObserver(np.random.default_rng(0))
        feed(ref)
        true_edges = len(ref._flows[0].edges)
        expect = np.random.default_rng(11)
        expect.random((true_edges, 5))
        assert obs.rng.random() == expect.random()

    @pytest.mark.parametrize("kw", [
        {"loss_prob": -0.1}, {"loss_prob": 1.0},
        {"reorder_prob": -0.1}, {"reorder_prob": 1.5},
    ])
    def test_impairment_validation(self, kw):
        with pytest.raises(ConfigurationError):
            SpinBitObserver(np.random.default_rng(0), **kw)


# ---------------------------------------------------------------------------
# Replay, read-only observation, and digest parity
# ---------------------------------------------------------------------------


def _quic_sim(kind="interval", conns=2):
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    pacer = make_pacer(kind, rate_gbps=None if kind == "none" else 19)
    return simulate_quic(
        snd, rcv, tb.path("wan54"),
        [QuicConnection(pacer=pacer) for _ in range(conns)],
        profile=PROFILE, rng=RngFactory(5),
    )


class TestReplayAndParity:
    def test_replay_emits_counters_and_restores_the_clock(self):
        sink = ListSink()
        obs = SpinBitObserver(np.random.default_rng(2))
        with tracing(TraceBus(sinks=[sink])) as bus:
            bus.add_sink(obs)
            _quic_sim().run(0)
            bus.remove_sink(obs)
            before = bus.now
            n = replay_spin_probes(bus, obs)
            assert bus.now == before
        ests = obs.estimates()
        assert n == len(ests) > 0
        spins = [e for e in sink.events if e.name == "probe.spin"]
        assert len(spins) == n
        assert [e.t for e in spins] == [e.t for e in ests]
        assert all(
            isinstance(v, (int, float)) for e in spins
            for v in e.args.values()
        )

    def test_replay_is_silent_when_probes_are_unwanted(self):
        sink = ListSink(categories=["flow"])
        obs = SpinBitObserver(np.random.default_rng(2))
        with tracing(TraceBus(sinks=[sink])) as bus:
            _quic_sim().run(0)
            assert replay_spin_probes(bus, obs) == 0
        assert [e for e in sink.events if e.cat == "probe"] == []

    def test_spin_probes_render_as_perfetto_counter_tracks(self):
        sink = ListSink()
        obs = SpinBitObserver(np.random.default_rng(2))
        with tracing(TraceBus(sinks=[sink])) as bus:
            bus.add_sink(obs)
            _quic_sim(conns=2).run(0)
            bus.remove_sink(obs)
            replay_spin_probes(bus, obs)
        doc = to_perfetto(sink.events)
        assert validate_perfetto(doc) == []
        counters = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "C"
        }
        assert {"probe.spin/flow0", "probe.spin/flow1"} <= counters
        spin = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "C" and e["name"] == "probe.spin/flow0"
        )
        assert {"est_rtt_ms", "true_rtt_ms", "err_pct"} <= set(spin["args"])

    def test_observation_is_read_only(self):
        """Attaching the observer cannot move a simulated number."""
        bare = _quic_sim().run(0)
        obs = SpinBitObserver(np.random.default_rng(2))
        with tracing(TraceBus(sinks=[obs])):
            tapped = _quic_sim().run(0)
        assert np.array_equal(bare.per_flow_goodput, tapped.per_flow_goodput)
        assert bare.retransmit_segments == tapped.retransmit_segments
        assert bare.loss_events == tapped.loss_events

    def test_aggregate_shard_count_is_invisible(self):
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        runs = []
        for shards in (1, 3):
            sim = aggregate_quic(
                snd, rcv, tb.path("wan54"),
                QuicConnection(pacer=make_pacer("token-bucket", rate_gbps=19)),
                96, profile=PROFILE, rng=RngFactory(8), shards=shards,
            )
            runs.append(sim.run(0))
        assert np.array_equal(
            runs[0].per_flow_goodput, runs[1].per_flow_goodput
        )
        assert runs[0].retransmit_segments == runs[1].retransmit_segments

    @pytest.mark.parametrize("exp_id", ["quic-pacing", "spin-accuracy"])
    def test_digest_is_kernel_invariant(self, exp_id):
        from repro.experiments.registry import run_experiment
        from repro.tools.harness import HarnessConfig

        config = HarnessConfig(
            repetitions=1, duration=1.0, omit=0.25, tick=0.008, seed=7
        )
        digests = set()
        for kernel in ("scalar", "vector"):
            with forced_kernel(kernel):
                digests.add(run_experiment(exp_id, config).digest())
        assert len(digests) == 1
