"""Property-based invariants of the flow simulator.

Hypothesis generates flow configurations; the simulator must uphold
physical invariants regardless: conservation (goodput never exceeds
capacity or NIC rates), non-negativity, pacing respected, determinism.
Short/coarse runs keep the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import units
from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.tcp.pacing import PacingConfig
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed

PROFILE = SimProfile(duration=4.0, tick=0.008, omit=1.0)

flow_strategy = st.builds(
    FlowSpec,
    pacing=st.one_of(
        st.just(PacingConfig.unpaced()),
        st.floats(min_value=0.5, max_value=60.0).map(PacingConfig.fq_rate_gbps),
    ),
    zerocopy=st.booleans(),
    skip_rx_copy=st.booleans(),
    cc=st.sampled_from(["cubic", "reno", "bbr1", "bbr3"]),
)

flows_strategy = st.lists(flow_strategy, min_size=1, max_size=6)


def run_amlight(flows, path="wan54", seed=3):
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    sim = FlowSimulator(snd, rcv, tb.path(path), flows, PROFILE, RngFactory(seed))
    return sim.run(), tb.path(path)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(flows=flows_strategy)
def test_conservation_and_nonnegativity(flows):
    res, path = run_amlight(flows)
    assert np.all(res.per_flow_goodput >= 0)
    # goodput can never exceed the path's usable wire capacity
    assert res.total_goodput <= path.capacity * 1.01
    # nor the 100G NIC
    assert res.total_gbps <= 101.0
    assert res.retransmit_segments >= 0
    assert res.sender_cpu.total_pct >= 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(flows=flows_strategy)
def test_pacing_respected(flows):
    res, _ = run_amlight(flows)
    for spec, gbps in zip(flows, res.per_flow_gbps):
        eff = spec.pacing.effective_rate()
        if eff is not None:
            assert gbps <= units.to_gbps(eff) * 1.02


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(flows=flows_strategy, seed=st.integers(min_value=0, max_value=10_000))
def test_determinism(flows, seed):
    a, _ = run_amlight(flows, seed=seed)
    b, _ = run_amlight(flows, seed=seed)
    assert np.array_equal(a.per_flow_goodput, b.per_flow_goodput)
    assert a.retransmit_segments == b.retransmit_segments


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pace=st.floats(min_value=1.0, max_value=20.0),
    n=st.integers(min_value=1, max_value=8),
)
def test_paced_underload_is_clean(pace, n):
    """Flows paced well under every limit deliver exactly their rate
    with no retransmits (ESnet LAN: 200G path, big switch buffer)."""
    if pace * n > 100:
        pace = 100.0 / n
    tb = ESnetTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    flows = [
        FlowSpec(pacing=PacingConfig.fq_rate_gbps(pace), zerocopy=True,
                 skip_rx_copy=True)
        for _ in range(n)
    ]
    sim = FlowSimulator(snd, rcv, tb.path("lan"), flows, PROFILE, RngFactory(1))
    res = sim.run()
    assert res.total_gbps == pytest.approx(pace * n, rel=0.04)
    assert res.retransmit_segments == 0
