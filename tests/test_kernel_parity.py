"""Scalar/vector tick-kernel byte parity.

The vector kernel's contract (``repro.sim.kernels``) is not "close":
it is *byte-identical* to the scalar reference — same
``RunResult`` numbers, same ``ExperimentResult.digest()``, and the
same-seed trace streams must match event for event.  These tests pin
that contract on fixed configurations covering every simulator branch
(mixed congestion control with losses, 802.3x flow control, zerocopy
fallback, pacing), on hypothesis-generated configurations, and on a
registered experiment's digest.

Selection plumbing (env var, programmatic override, factory errors) is
covered at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.kernels import (
    DEFAULT_KERNEL,
    ENV_VAR,
    KERNEL_NAMES,
    ScalarKernel,
    VectorKernel,
    force_kernel,
    forced_kernel,
    kernel_name,
    make_kernel,
)
from repro.tcp.pacing import PacingConfig
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.trace.bus import ListSink, TraceBus, tracing

PROFILE = SimProfile(duration=4.0, tick=0.008, omit=1.0)


def run_traced(kernel, hosts, path, flows, seed, profile=PROFILE):
    """One traced simulation run under the named kernel."""
    snd, rcv = hosts
    sink = ListSink()
    with forced_kernel(kernel):
        with tracing(TraceBus(sinks=[sink])):
            sim = FlowSimulator(
                snd, rcv, path, flows, profile, RngFactory(seed)
            )
            res = sim.run()
    return res, sink.events


def assert_bit_identical(case_a, case_b):
    """Full-result and full-trace equality, no tolerances anywhere."""
    ra, ea = case_a
    rb, eb = case_b
    assert np.array_equal(ra.per_flow_goodput, rb.per_flow_goodput)
    assert np.array_equal(ra.interval_goodput, rb.interval_goodput)
    assert ra.retransmit_segments == rb.retransmit_segments
    assert ra.loss_events == rb.loss_events
    assert ra.sender_cpu == rb.sender_cpu
    assert ra.receiver_cpu == rb.receiver_cpu
    assert ra.zc_fraction_mean == rb.zc_fraction_mean
    assert ea == eb


#: Fixed configurations covering the simulator's branchy corners.
CASES = {
    # Mixed CC algorithms on a lossy long path: loss reactions, cwnd
    # validation, per-algorithm batch groups.
    "mixed-cc-wan": (
        AmLightTestbed(kernel="6.5"),
        "wan104",
        [
            FlowSpec(cc="bbr1"),
            FlowSpec(cc="reno"),
            FlowSpec(cc="cubic", zerocopy=True),
            FlowSpec(cc="bbr3", pacing=PacingConfig.fq_rate_gbps(20.0)),
        ],
        7,
    ),
    # Homogeneous cubic on a LAN: the steady-state fast path.
    "cubic-lan": (
        AmLightTestbed(kernel="6.8"),
        "lan",
        [FlowSpec(cc="cubic") for _ in range(8)],
        2024,
    ),
    # Parallel unpaced flows, alternating zerocopy: burst trains,
    # concentrated drops, zc fallback fractions.
    "esnet-unpaced": (
        ESnetTestbed(kernel="6.8"),
        "wan",
        [FlowSpec(zerocopy=(i % 2 == 0)) for i in range(16)],
        11,
    ),
    # fq-paced zerocopy receivers skipping the rx copy: the all-smooth
    # (no-trains) path plus the skip-copy receiver cost branch.
    "paced-skip-copy": (
        ESnetTestbed(kernel="6.5"),
        "lan",
        [
            FlowSpec(
                pacing=PacingConfig.fq_rate_gbps(12.0),
                zerocopy=True,
                skip_rx_copy=True,
            )
            for _ in range(4)
        ],
        5,
    ),
    # The full congestion-control zoo on a lossy WAN: every array batch
    # group (incl. the per-flow-parameter tunable group) side by side.
    "cc-zoo-wan": (
        AmLightTestbed(kernel="6.8"),
        "wan54",
        [
            FlowSpec(cc="highspeed"),
            FlowSpec(cc="htcp"),
            FlowSpec(cc="scalable"),
            FlowSpec(cc="westwood"),
            FlowSpec(cc="tunable-cubic:alpha=1.5,beta=0.5"),
            FlowSpec(cc="tunable-cubic:c=0.2"),
            FlowSpec(cc="cubic"),
            FlowSpec(cc="reno"),
        ],
        13,
    ),
    # Homogeneous runs of each zoo algorithm: the single-full-group
    # fast path (batch.cwnd aliases the group array) for every stepper.
    "cc-zoo-homogeneous": (
        AmLightTestbed(kernel="6.8"),
        "wan104",
        [
            FlowSpec(cc=kind)
            for kind in (
                "highspeed", "htcp", "scalable", "westwood",
            )
            for _ in range(2)
        ],
        29,
    ),
}


class TestFixedConfigParity:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_results_and_trace_bit_identical(self, name):
        tb, path, flows, seed = CASES[name]
        scalar = run_traced("scalar", tb.host_pair(), tb.path(path), flows, seed)
        vector = run_traced("vector", tb.host_pair(), tb.path(path), flows, seed)
        assert_bit_identical(scalar, vector)

    def test_flow_control_path_parity(self):
        """802.3x pause frames (ESnet production DTNs) — the branch
        where ring overflow becomes backpressure, not loss."""
        tb = ESnetTestbed(kernel="6.8")
        flows = [FlowSpec(cc="cubic") for _ in range(6)]
        scalar = run_traced(
            "scalar", tb.production_host_pair(), tb.production_path(), flows, 3
        )
        vector = run_traced(
            "vector", tb.production_host_pair(), tb.production_path(), flows, 3
        )
        assert_bit_identical(scalar, vector)


flow_strategy = st.builds(
    FlowSpec,
    pacing=st.one_of(
        st.just(PacingConfig.unpaced()),
        st.floats(min_value=0.5, max_value=60.0).map(PacingConfig.fq_rate_gbps),
    ),
    zerocopy=st.booleans(),
    skip_rx_copy=st.booleans(),
    cc=st.sampled_from(
        [
            "cubic",
            "reno",
            "bbr1",
            "bbr3",
            "highspeed",
            "htcp",
            "scalable",
            "westwood",
            "tunable-cubic:alpha=2.0,beta=0.6,c=0.5",
        ]
    ),
)


class TestHypothesisParity:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        flows=st.lists(flow_strategy, min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        path=st.sampled_from(["wan54", "wan104", "lan"]),
    )
    def test_random_configs_bit_identical(self, flows, seed, path):
        tb = AmLightTestbed(kernel="6.8")
        scalar = run_traced("scalar", tb.host_pair(), tb.path(path), flows, seed)
        vector = run_traced("vector", tb.host_pair(), tb.path(path), flows, seed)
        assert_bit_identical(scalar, vector)


class TestTimeoutPathParity:
    """``cc_timeout`` (RTO collapse) bit parity between the kernels.

    The fluid driver never RTOs, so this path is pinned directly: both
    kernels process the same tick/loss/timeout schedule and must agree
    on every window and every (flow, before, after) report — including
    post-timeout epoch state, which is where the pre-fix ``on_timeout``
    (base-state-only reset) diverged from a true Linux RTO.
    """

    KINDS = [
        "cubic", "reno", "highspeed", "htcp", "scalable", "westwood",
        "tunable-cubic:alpha=1.2,beta=0.55", "bbr1",
    ]

    @staticmethod
    def _kernel(name, ccs):
        if name == "scalar":
            return ScalarKernel(
                ccs, [], [],
                run_noise=1.0, snd_app_share=1.0, rcv_app_share=1.0,
                rcv_irq_share=1.0, budget_rx=1.0, agg_rx_base=1.0,
            )
        # Only the congestion hooks are under test; skip the CPU cost
        # half of ``_bind`` (it needs real cost models).
        from repro.tcp.cc.batch import CcBatch

        kern = VectorKernel.__new__(VectorKernel)
        kern.batch = CcBatch(ccs)
        kern.cwnd = kern.batch.cwnd
        return kern

    def test_timeout_schedule_bit_identical(self):
        from repro.tcp.cc import make_cc

        n = len(self.KINDS)
        mss = 8960.0
        kernels = {
            name: self._kernel(name, [make_cc(k, mss=mss) for k in self.KINDS])
            for name in ("scalar", "vector")
        }
        rng = np.random.default_rng(17)
        now, dt, rtt = 0.0, 0.008, 0.054
        max_window = 64 * 1024 * 1024.0
        for step in range(800):
            now += dt
            cwnd = kernels["scalar"].cwnd
            delivered = rng.uniform(0.0, 2.5, n) * cwnd * (dt / rtt)
            al_mask = rng.random(n) < 0.05
            loss_idx = np.nonzero(rng.random(n) < 0.01)[0]
            to_idx = np.nonzero(rng.random(n) < 0.004)[0]
            reports = {}
            for name, kern in kernels.items():
                losses = kern.cc_feedback(
                    now, dt, rtt, delivered, loss_idx, al_mask, max_window
                )
                timeouts = kern.cc_timeout(now, to_idx)
                reports[name] = (losses, timeouts)
            assert reports["scalar"] == reports["vector"], step
            assert np.array_equal(
                kernels["scalar"].cwnd, kernels["vector"].cwnd
            ), step


class TestExperimentDigestParity:
    def test_registered_experiment_digest_identical(self):
        """End-to-end through the harness: the committed digest form."""
        from repro.runner import RunnerConfig, run_experiments

        from tests._golden import GOLDEN_CONFIG

        digests = {}
        for kernel in KERNEL_NAMES:
            with forced_kernel(kernel):
                report = run_experiments(
                    ["pit-fqrate"],
                    config=GOLDEN_CONFIG,
                    runner=RunnerConfig(jobs=1, use_cache=False),
                )
            (result,) = report.results
            digests[kernel] = result.digest()
        assert digests["scalar"] == digests["vector"]


class TestSelection:
    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        force_kernel(None)
        assert kernel_name() == DEFAULT_KERNEL == "vector"

    def test_env_var_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "scalar")
        force_kernel(None)
        assert kernel_name() == "scalar"

    def test_env_var_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "simd")
        force_kernel(None)
        with pytest.raises(ConfigurationError):
            kernel_name()

    def test_force_kernel_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            force_kernel("cuda")

    def test_forced_kernel_scopes_and_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        force_kernel(None)
        with forced_kernel("scalar"):
            assert kernel_name() == "scalar"
            with forced_kernel("vector"):
                assert kernel_name() == "vector"
            assert kernel_name() == "scalar"
        assert kernel_name() == DEFAULT_KERNEL

    def test_make_kernel_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            make_kernel("cuda")

    def test_make_kernel_dispatch(self):
        from repro.sim import kernels

        assert kernels._KERNELS == {
            "scalar": ScalarKernel,
            "vector": VectorKernel,
        }
        assert set(KERNEL_NAMES) == set(kernels._KERNELS)
