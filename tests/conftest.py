"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.rng import RngFactory
from repro.tools.harness import HarnessConfig


@pytest.fixture()
def rng_factory() -> RngFactory:
    return RngFactory(seed=1234)


@pytest.fixture(scope="session")
def quick_config() -> HarnessConfig:
    """Fast harness config for integration tests."""
    return HarnessConfig(repetitions=2, duration=8.0, omit=2.0, tick=0.004)


@pytest.fixture(scope="session")
def shape_config() -> HarnessConfig:
    """Slightly longer runs for the paper-shape assertions."""
    return HarnessConfig(repetitions=2, duration=12.0, omit=3.0, tick=0.004)


@pytest.fixture(scope="session")
def campaign_cache_dir(tmp_path_factory):
    """Cache directory shared by the session's golden campaign."""
    return tmp_path_factory.mktemp("repro-cache")


@pytest.fixture(scope="session")
def golden_campaign(campaign_cache_dir):
    """One parallel (jobs=4), cold-cache campaign over every experiment.

    This single run feeds three consumer groups: the golden
    characterization tests (digest parity with the committed files),
    the cache tests (it populates ``campaign_cache_dir``), and the
    paper-shape expectation tests (its rows carry every experiment's
    claims at :data:`tests._golden.GOLDEN_CONFIG` fidelity).
    """
    from repro.experiments import all_experiment_ids
    from repro.runner import RunnerConfig, run_experiments

    from tests._golden import GOLDEN_CONFIG

    return run_experiments(
        all_experiment_ids(),
        config=GOLDEN_CONFIG,
        runner=RunnerConfig(jobs=4, cache_dir=campaign_cache_dir),
    )


@pytest.fixture(scope="session")
def campaign_result(golden_campaign):
    """Accessor: ``campaign_result('fig09')`` -> ExperimentResult."""

    def get(exp_id: str):
        return golden_campaign.by_id(exp_id).result

    return get
