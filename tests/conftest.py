"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.rng import RngFactory
from repro.tools.harness import HarnessConfig


@pytest.fixture()
def rng_factory() -> RngFactory:
    return RngFactory(seed=1234)


@pytest.fixture(scope="session")
def quick_config() -> HarnessConfig:
    """Fast harness config for integration tests."""
    return HarnessConfig(repetitions=2, duration=8.0, omit=2.0, tick=0.004)


@pytest.fixture(scope="session")
def shape_config() -> HarnessConfig:
    """Slightly longer runs for the paper-shape assertions."""
    return HarnessConfig(repetitions=2, duration=12.0, omit=3.0, tick=0.004)
