"""Failure injection and misconfiguration scenarios.

The paper is largely a catalogue of ways to get 100G tuning wrong;
these tests drive each failure mode end to end and assert the simulator
degrades the way the paper says real systems do.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.host.sysctl import Sysctls
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.tcp.pacing import PacingConfig
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.iperf3 import Iperf3, Iperf3Options

PROFILE = SimProfile(duration=8.0, tick=0.004, omit=2.0)


def run(snd, rcv, path, flows, seed=3):
    return FlowSimulator(snd, rcv, path, flows, PROFILE, RngFactory(seed)).run()


@pytest.fixture(scope="module")
def amlight():
    return AmLightTestbed(kernel="6.8")


class TestMisconfigurations:
    def test_qdisc_burstiness_ordering(self, amlight):
        """fq pacing is perfectly smooth; fq_codel's internal pacing
        leaves residual bursts; no pacing at all is worst.  End to end
        on the 104 ms path the retransmit/goodput ordering must follow
        (ties allowed: the buffer can absorb codel's residual trains)."""
        snd, rcv = amlight.host_pair()
        snd_codel = snd.set(sysctls=snd.sysctls.set(default_qdisc="fq_codel"))
        path = amlight.path("wan104")
        fq = run(snd, rcv, path, [FlowSpec(
            pacing=PacingConfig.fq_rate_gbps(50), zerocopy=True)])
        codel = run(snd_codel, rcv, path, [FlowSpec(
            pacing=PacingConfig.fq_rate_gbps(50, qdisc="fq_codel"), zerocopy=True)])
        unpaced = run(snd, rcv, path, [FlowSpec(zerocopy=True)])
        assert fq.retransmit_segments == 0
        assert fq.retransmit_segments <= codel.retransmit_segments
        assert codel.retransmit_segments <= unpaced.retransmit_segments
        assert unpaced.total_gbps <= codel.total_gbps * 1.02
        assert codel.total_gbps <= fq.total_gbps * 1.02

    def test_small_rmem_on_receiver_caps_throughput(self, amlight):
        snd, rcv = amlight.host_pair()
        rcv_small = rcv.set(sysctls=Sysctls())  # stock 6 MB rmem
        res = run(snd, rcv_small, amlight.path("wan54"), [FlowSpec()])
        assert res.total_gbps < 1.0  # ~3 MB window / 54 ms

    def test_untuned_vm_loses_half(self):
        tuned = AmLightTestbed(kernel="6.8", vm_mode="tuned")
        untuned = AmLightTestbed(kernel="6.8", vm_mode="untuned")
        s1, r1 = tuned.host_pair()
        s2, r2 = untuned.host_pair()
        good = run(s1, r1, tuned.path("wan54"), [FlowSpec()])
        bad = run(s2, r2, untuned.path("wan54"), [FlowSpec()])
        assert bad.total_gbps < 0.7 * good.total_gbps

    def test_smt_and_governor_cost_throughput(self, amlight):
        snd, rcv = amlight.host_pair()
        lazy_tuning = snd.tuning.set(smt_enabled=True, governor="schedutil")
        snd_lazy = snd.set(tuning=lazy_tuning)
        rcv_lazy = rcv.set(tuning=lazy_tuning)
        good = run(snd, rcv, amlight.path("lan"), [FlowSpec()])
        lazy = run(snd_lazy, rcv_lazy, amlight.path("lan"), [FlowSpec()])
        assert lazy.total_gbps < 0.85 * good.total_gbps

    def test_wrong_numa_node_placement(self, amlight):
        from repro.host.numa import CorePlacement

        snd, rcv = amlight.host_pair()
        wrong = CorePlacement(
            irq_cores=tuple(range(16, 24)), app_cores=tuple(range(24, 32)),
            label="wrong-node",
        )
        snd_wrong = snd.set(placement=wrong)
        rcv_wrong = rcv.set(placement=wrong)
        good = run(snd, rcv, amlight.path("lan"), [FlowSpec()])
        bad = run(snd_wrong, rcv_wrong, amlight.path("lan"), [FlowSpec()])
        assert bad.total_gbps < 0.85 * good.total_gbps

    def test_unpatched_iperf3_cannot_pace_fast(self, amlight):
        snd, rcv = amlight.host_pair()
        tool = Iperf3(snd, rcv, amlight.path("wan54"), rng=RngFactory(1), tick=0.004)
        res = tool.run(Iperf3Options(
            duration=8, omit=2, zerocopy="z", fq_rate_gbps=50, has_pr1728=False,
        ))
        assert res.gbps < 17  # wrapped to ~15.6


class TestDegenerateInputs:
    def test_bad_profile(self):
        with pytest.raises(ConfigurationError):
            SimProfile(duration=1.0, tick=0.0, omit=0.5)
        with pytest.raises(ConfigurationError):
            SimProfile(duration=1.0, tick=0.01, omit=2.0)

    def test_tiny_pacing_rate_still_converges(self, amlight):
        snd, rcv = amlight.host_pair()
        res = run(snd, rcv, amlight.path("lan"),
                  [FlowSpec(pacing=PacingConfig.fq_rate_gbps(0.1))])
        assert res.total_gbps == pytest.approx(0.1, rel=0.1)

    def test_many_flows_share_cores(self, amlight):
        """More flows than app cores: aggregate stays bounded, shares
        stay roughly even (paced)."""
        snd, rcv = amlight.host_pair()
        flows = [FlowSpec(pacing=PacingConfig.fq_rate_gbps(2)) for _ in range(16)]
        res = run(snd, rcv, amlight.path("lan"), flows)
        assert res.total_gbps == pytest.approx(32.0, rel=0.06)

    def test_zero_rtt_lan_is_stable(self, amlight):
        """Sub-tick RTT must not blow up the window math."""
        snd, rcv = amlight.host_pair()
        import dataclasses

        path = dataclasses.replace(amlight.path("lan"), rtt_sec=1e-5)
        res = run(snd, rcv, path, [FlowSpec()])
        assert 20 < res.total_gbps < 101

    def test_mixed_flow_configs(self, amlight):
        """Heterogeneous flows coexist: one paced zerocopy + one default."""
        snd, rcv = amlight.host_pair()
        flows = [
            FlowSpec(pacing=PacingConfig.fq_rate_gbps(20), zerocopy=True),
            FlowSpec(),
        ]
        res = run(snd, rcv, amlight.path("wan54"), flows)
        assert res.per_flow_gbps[0] == pytest.approx(20, rel=0.08)
        assert res.per_flow_gbps[1] > 5
