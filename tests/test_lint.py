"""The ``repro lint`` static-analysis subsystem.

The contract under test, from the invariants documented in README:

* every rule fires on its minimal fixture in ``tests/lint_fixtures/``
  — and *only* its rule fires there;
* the shipped ``src/repro`` tree is clean (violations are either fixed
  or carry a justified ``# repro: noqa-<CODE>``);
* suppressions silence exactly the named code on the named line;
* the CLI wrapper exits 0/1 and renders text and JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.errors import ReproError
from repro.lint import all_rules, get_rule, lint_paths, render_json, render_text
from repro.lint.core import FileContext, Violation

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "lint_fixtures"
SRC = REPO / "src" / "repro"

#: rule code -> the fixture path where it (and only it) must fire.
RULE_FIXTURES = {
    "DET001": FIXTURES / "det001.py",
    "DET002": FIXTURES / "det002.py",
    "DET003": FIXTURES / "det003.py",
    "UNIT001": FIXTURES / "unit001.py",
    "UNIT002": FIXTURES / "unit002.py",
    "FLOAT001": FIXTURES / "float001.py",
    "FLOAT002": FIXTURES / "float002.py",
    "EXP001": FIXTURES / "exp001_project",
}

#: violations each fixture must produce (constructs in the file).
EXPECTED_COUNTS = {
    "DET001": 2,  # time.time() + random.random()
    "DET002": 2,  # sorted(key=hash) + bare-set for loop
    "DET003": 2,  # `for k in os.environ` + comprehension over a copy
    "UNIT001": 2,  # 1e9 literal + `* 8`
    "UNIT002": 2,  # decimal compare + decimal assign on byte sysctls
    "FLOAT001": 1,
    "FLOAT002": 2,  # bare `+= dt` + attribute `+= profile.tick`
    "EXP001": 2,  # unregistered + unbenchmarked
}


def fired(path: Path) -> list[Violation]:
    return lint_paths([str(path)])


class TestRegistry:
    def test_all_documented_rules_registered(self):
        codes = {r.code for r in all_rules()}
        assert set(RULE_FIXTURES) <= codes

    def test_rules_have_descriptions(self):
        for rule in all_rules():
            assert rule.code and rule.name and rule.description

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")


class TestFixturesFire:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_rule_fires_on_its_fixture_and_nothing_else_does(self, code):
        violations = fired(RULE_FIXTURES[code])
        assert {v.code for v in violations} == {code}
        assert len(violations) == EXPECTED_COUNTS[code]

    def test_exp001_names_both_failures(self):
        messages = " ".join(v.message for v in fired(RULE_FIXTURES["EXP001"]))
        assert "registry.py" in messages
        assert "test_bench_fig99" in messages


class TestSrcTreeClean:
    def test_src_repro_is_clean(self):
        violations = lint_paths([str(SRC)])
        assert violations == [], render_text(violations)

    def test_experiment_coverage_holds_on_real_tree(self):
        # EXP001 alone over the real experiments package: every fig
        # module registered and benchmarked (fig12_fig13 needs both).
        assert lint_paths([str(SRC / "experiments")], select=["EXP001"]) == []


class TestSuppression:
    def test_noqa_silences_named_code(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import time\n"
            "t = time.time()  # repro: noqa-DET001\n"
        )
        assert lint_paths([str(f)]) == []

    def test_noqa_for_other_code_does_not_silence(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import time\n"
            "t = time.time()  # repro: noqa-UNIT001\n"
        )
        assert [v.code for v in lint_paths([str(f)])] == ["DET001"]

    def test_noqa_comma_list(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import time\n"
            "t = time.time() * 8  # repro: noqa-DET001,UNIT001\n"
        )
        assert lint_paths([str(f)]) == []

    def test_noqa_only_applies_to_its_line(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "import time\n"
            "# repro: noqa-DET001\n"
            "t = time.time()\n"
        )
        assert [v.code for v in lint_paths([str(f)])] == ["DET001"]


class TestRunner:
    def test_select_unknown_code_raises(self):
        with pytest.raises(ReproError):
            lint_paths([str(FIXTURES / "det001.py")], select=["NOPE001"])

    def test_missing_path_raises(self):
        with pytest.raises(ReproError):
            lint_paths([str(FIXTURES / "does_not_exist.py")])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        violations = lint_paths([str(f)])
        assert [v.code for v in violations] == ["PARSE001"]

    def test_render_json_round_trips(self):
        violations = fired(RULE_FIXTURES["DET001"])
        doc = json.loads(render_json(violations))
        assert doc["count"] == len(violations) == 2
        assert {v["code"] for v in doc["violations"]} == {"DET001"}

    def test_render_text_clean_message(self):
        assert "clean" in render_text([])


class TestCli:
    def test_lint_src_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_fixture_exits_one(self, capsys):
        assert main(["lint", str(RULE_FIXTURES["DET001"])]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_json_format(self, capsys):
        assert main(["lint", str(RULE_FIXTURES["FLOAT001"]),
                     "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1

    def test_lint_select(self, capsys):
        rc = main(["lint", str(RULE_FIXTURES["DET001"]),
                   "--select", "UNIT001"])
        assert rc == 0  # only UNIT001 requested; det001.py has none

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in RULE_FIXTURES:
            assert code in out

    def test_unknown_select_is_clean_error(self, capsys):
        assert main(["lint", str(SRC), "--select", "NOPE1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestFileContextScoping:
    def test_repro_parts_inside_package(self):
        ctx = FileContext(path=Path("src/repro/sim/flowsim.py"), source="")
        assert ctx.repro_parts == ("sim", "flowsim.py")
        assert ctx.subsystem == "sim"
        assert ctx.in_sim_code()

    def test_core_not_sim_scoped(self):
        ctx = FileContext(path=Path("src/repro/core/units.py"), source="")
        assert ctx.subsystem == "core"
        assert not ctx.in_sim_code()

    def test_outside_package_is_unscoped(self):
        ctx = FileContext(path=Path("tests/lint_fixtures/x.py"), source="")
        assert ctx.repro_parts is None
        assert ctx.in_sim_code()
