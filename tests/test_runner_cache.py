"""Unit tests for the content-addressed result cache."""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult
from repro.runner.cache import (
    CACHE_FORMAT,
    ResultCache,
    cache_key,
    canonical_json,
    default_cache_dir,
    source_digest,
)
from repro.tools.harness import HarnessConfig

CFG = HarnessConfig(repetitions=2, duration=4.0, omit=1.0, tick=0.008)


def make_tree(root, files: dict):
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)


class TestSourceDigest:
    def test_stable_for_identical_trees(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        files = {"pkg/x.py": "x = 1\n", "pkg/sub/y.py": "y = 2\n"}
        make_tree(a, files)
        make_tree(b, files)
        assert source_digest(a) == source_digest(b)

    def test_content_change_changes_digest(self, tmp_path):
        make_tree(tmp_path, {"x.py": "x = 1\n"})
        before = source_digest(tmp_path)
        (tmp_path / "x.py").write_text("x = 2\n")
        assert source_digest(tmp_path, refresh=True) != before

    def test_new_file_changes_digest(self, tmp_path):
        make_tree(tmp_path, {"x.py": "x = 1\n"})
        before = source_digest(tmp_path)
        make_tree(tmp_path, {"z.py": "z = 3\n"})
        assert source_digest(tmp_path, refresh=True) != before

    def test_non_python_files_ignored(self, tmp_path):
        make_tree(tmp_path, {"x.py": "x = 1\n"})
        before = source_digest(tmp_path)
        (tmp_path / "notes.md").write_text("irrelevant")
        assert source_digest(tmp_path, refresh=True) == before

    def test_memoized_per_process(self, tmp_path):
        make_tree(tmp_path, {"x.py": "x = 1\n"})
        before = source_digest(tmp_path)
        (tmp_path / "x.py").write_text("x = 99\n")
        # without refresh the memo answers — one digest per campaign
        assert source_digest(tmp_path) == before

    def test_package_digest_is_computable(self):
        digest = source_digest()
        assert len(digest) == 64


class TestCacheKey:
    def test_depends_on_every_component(self):
        base = cache_key("fig05", CFG, "src0")
        assert cache_key("fig06", CFG, "src0") != base
        assert cache_key("fig05", CFG, "src1") != base
        other = dataclasses.replace(CFG, tick=0.004)
        assert cache_key("fig05", other, "src0") != base

    def test_stable_across_processes(self):
        # no salted hashes anywhere in the key path
        assert cache_key("fig05", CFG, "d") == cache_key("fig05", CFG, "d")

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == '{"a":[1.5,"x"],"b":1}'


class TestResultCache:
    def payload(self):
        result = ExperimentResult(
            exp_id="t", title="T", paper_ref="Fig. 0",
            columns=["a", "b"], rows=[{"a": 1, "b": 2.5}],
        )
        return {"exp_id": "t", "result": result.to_dict()}

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, self.payload())
        fresh = ResultCache(tmp_path)  # no memo: forces the disk path
        doc = fresh.get(key)
        assert doc is not None
        restored = ExperimentResult.from_dict(doc["result"])
        assert restored.rows == [{"a": 1, "b": 2.5}]
        assert fresh.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, self.payload())
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{not json")
        assert ResultCache(tmp_path).get(key) is None

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, self.payload())
        path = tmp_path / key[:2] / f"{key}.json"
        doc = json.loads(path.read_text())
        doc["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(doc))
        assert ResultCache(tmp_path).get(key) is None

    def test_no_tmp_litter_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("aa" + "0" * 62, self.payload())
        litter = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert litter == []

    def test_mutating_a_get_does_not_poison_the_memo(self, tmp_path):
        # Regression: the in-process memo used to hand the same payload
        # dict to every caller, so one caller's mutation silently
        # leaked into every later hit for that key.
        cache = ResultCache(tmp_path)
        key = "11" + "0" * 62
        cache.put(key, self.payload())
        first = cache.get(key)
        first["result"]["rows"][0]["a"] = 999
        first["exp_id"] = "tampered"
        again = cache.get(key)
        assert again["exp_id"] == "t"
        assert again["result"]["rows"][0]["a"] == 1

    def test_mutating_the_put_payload_does_not_poison_the_memo(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "22" + "0" * 62
        payload = self.payload()
        cache.put(key, payload)
        payload["result"]["rows"][0]["a"] = 999
        assert cache.get(key)["result"]["rows"][0]["a"] == 1

    def test_disk_hit_is_also_isolated(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "33" + "0" * 62
        cache.put(key, self.payload())
        fresh = ResultCache(tmp_path)  # no memo: first get reads disk
        fresh.get(key)["result"]["rows"][0]["a"] = 999
        assert fresh.get(key)["result"]["rows"][0]["a"] == 1


def _race_payload() -> dict:
    result = ExperimentResult(
        exp_id="race", title="R", paper_ref="Fig. 0",
        columns=["v"], rows=[{"v": 42}],
    )
    return {"exp_id": "race", "result": result.to_dict()}


def _race_put(root: str, key: str, barrier, iterations: int, out) -> None:
    """Child process body: hammer ``put`` on one key, report what stuck."""
    cache = ResultCache(Path(root))
    payload = _race_payload()
    barrier.wait()
    for _ in range(iterations):
        cache.put(key, payload)
    fresh = ResultCache(Path(root))  # no memo: read the published file
    doc = fresh.get(key)
    raw = (Path(root) / key[:2] / f"{key}.json").read_bytes()
    out.put((doc, hashlib.sha256(raw).hexdigest()))


class TestConcurrentWriters:
    def test_two_processes_racing_put_get_identical_bytes(self, tmp_path):
        # Regression for the daemon's reality: two pool workers can
        # finish the same key back to back (a coalesce near-miss), and
        # campaigns already share cache directories.  Both writers must
        # come out seeing one complete, identical entry — never a torn
        # or vanished file.
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        out = ctx.Queue()
        key = "44" + "0" * 62
        procs = [
            ctx.Process(
                target=_race_put,
                args=(str(tmp_path), key, barrier, 50, out),
            )
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        reports = [out.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        (doc_a, digest_a), (doc_b, digest_b) = reports
        assert digest_a == digest_b  # byte-identical published entry
        assert doc_a == doc_b
        assert doc_a["result"]["rows"] == [{"v": 42}]
        litter = [p for p in tmp_path.rglob(".tmp-*")]
        assert litter == []
        # And the survivor is a complete, valid entry on disk.
        final = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert final["format"] == CACHE_FORMAT and final["key"] == key

    def test_failed_put_unlinks_its_tempfile_and_reraises(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "55" + "0" * 62
        poison = {"exp_id": "t", "result": {"oops": object()}}  # not JSON
        with pytest.raises(TypeError):
            cache.put(key, poison)
        assert list(tmp_path.rglob(".tmp-*")) == []
        assert not (tmp_path / key[:2] / f"{key}.json").exists()
        assert cache.stores == 0 and ResultCache(tmp_path).get(key) is None


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(default_cache_dir()) == ".repro_cache"


class TestSerializationRoundtrips:
    def test_harness_config_roundtrip(self):
        assert HarnessConfig.from_dict(CFG.to_dict()) == CFG

    def test_experiment_result_numpy_rows_jsonify(self):
        import numpy as np

        result = ExperimentResult(
            exp_id="t", title="T", paper_ref="Fig. 0", columns=["v", "n"],
            rows=[{"v": np.float64(1.25), "n": np.int64(3)}],
        )
        doc = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(doc)
        assert restored.rows == [{"v": 1.25, "n": 3}]
        assert restored.digest() == result.digest()

    def test_digest_sensitive_to_rows_only_changes(self):
        result = ExperimentResult(
            exp_id="t", title="T", paper_ref="Fig. 0", columns=["v"],
            rows=[{"v": 1.0}],
        )
        changed = ExperimentResult.from_dict(result.to_dict())
        changed.rows[0]["v"] = 1.0000000001
        assert changed.digest() != result.digest()
