"""Unit tests for the hand-rolled HTTP/1.1 layer under ``repro serve``."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_REQUEST_LINE,
    HttpError,
    error_response,
    json_response,
    read_request,
    response,
    sse_event,
    sse_preamble,
)


def parse(raw: bytes, max_body: int = 1 << 20):
    """Feed ``raw`` to the parser as one closed stream."""

    async def _go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body=max_body)

    return asyncio.run(_go())


def parse_error(raw: bytes, max_body: int = 1 << 20) -> HttpError:
    with pytest.raises(HttpError) as caught:
        parse(raw, max_body=max_body)
    return caught.value


class TestRequestParsing:
    def test_simple_get(self):
        req = parse(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/stats"
        assert req.query == {}
        assert req.version == "HTTP/1.1"
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_query_string_and_percent_decoding(self):
        req = parse(b"GET /traces/a%2Fb/tail?limit=5&flag= HTTP/1.1\r\n\r\n")
        assert req.path == "/traces/a/b/tail"
        assert req.query == {"limit": "5", "flag": ""}

    def test_post_body_roundtrip(self):
        doc = {"exp_id": "fig09"}
        body = json.dumps(doc).encode()
        raw = (
            b"POST /experiments HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = parse(raw)
        assert req.body == body
        assert req.json() == doc

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_duplicate_headers_join_with_comma(self):
        req = parse(b"GET / HTTP/1.1\r\nX-A: 1\r\nX-A: 2\r\n\r\n")
        assert req.headers["x-a"] == "1, 2"

    def test_empty_target_path_normalizes_to_slash(self):
        req = parse(b"GET ?q=1 HTTP/1.1\r\n\r\n")
        assert req.path == "/"


class TestKeepAlive:
    def test_http11_defaults_on(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive is True

    def test_http11_close_honoured(self):
        raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert parse(raw).keep_alive is False

    def test_http10_defaults_off(self):
        assert parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False

    def test_http10_opt_in(self):
        raw = b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
        assert parse(raw).keep_alive is True


class TestParseErrors:
    def test_malformed_request_line_is_400(self):
        assert parse_error(b"GET /\r\n\r\n").status == 400

    def test_unknown_version_is_400(self):
        assert parse_error(b"GET / HTTP/2.0\r\n\r\n").status == 400

    def test_lowercase_method_is_400(self):
        assert parse_error(b"get / HTTP/1.1\r\n\r\n").status == 400

    def test_malformed_header_line_is_400(self):
        assert parse_error(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").status == 400

    def test_post_without_length_is_411(self):
        assert parse_error(b"POST /x HTTP/1.1\r\n\r\n").status == 411

    def test_get_without_length_has_no_body_requirement(self):
        assert parse(b"GET /x HTTP/1.1\r\n\r\n").body == b""

    def test_oversized_body_is_413(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"a" * 100
        assert parse_error(raw, max_body=10).status == 413

    def test_non_integer_length_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_negative_length_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_truncated_body_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        assert parse_error(raw).status == 400

    def test_chunked_upload_is_501(self):
        raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        assert parse_error(raw).status == 501

    def test_huge_request_line_is_431(self):
        raw = b"GET /" + b"a" * (MAX_REQUEST_LINE + 10) + b" HTTP/1.1\r\n\r\n"
        assert parse_error(raw).status == 431

    def test_huge_header_block_is_431(self):
        filler = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"v" * 4000) for i in range(10)
        )
        raw = b"GET / HTTP/1.1\r\n" + filler + b"\r\n"
        assert parse_error(raw).status == 431


class TestRequestJson:
    def test_empty_body_is_400(self):
        req = parse(b"GET / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as caught:
            req.json()
        assert caught.value.status == 400

    def test_invalid_json_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n{not"
        req = parse(raw)
        with pytest.raises(HttpError) as caught:
            req.json()
        assert caught.value.status == 400

    def test_non_object_json_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 7\r\n\r\n[1,2,3]"
        req = parse(raw)
        with pytest.raises(HttpError) as caught:
            req.json()
        assert caught.value.status == 400


class TestResponses:
    def test_response_shape(self):
        raw = response(200, b"hi", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"hi"
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Length: 2" in lines
        assert "Connection: keep-alive" in lines

    def test_json_response_is_canonical_bytes(self):
        # Identical documents must serialize to identical bytes — the
        # bench diffs hit responses across its replay.
        a = json_response(200, {"b": 1, "a": 2})
        b = json_response(200, {"a": 2, "b": 1})
        assert a == b
        assert b'"a":2,"b":1' in a

    def test_error_response_defaults_to_close(self):
        raw = error_response(404, "nope")
        assert b"Connection: close" in raw
        assert b'"status":404' in raw

    def test_sse_preamble_has_no_length_and_closes(self):
        raw = sse_preamble()
        assert b"Content-Type: text/event-stream" in raw
        assert b"Content-Length" not in raw
        assert b"Connection: close" in raw

    def test_sse_event_framing(self):
        assert sse_event("x") == b"data: x\n\n"
        assert sse_event("x", event="end") == b"event: end\ndata: x\n\n"
        assert sse_event("a\nb") == b"data: a\ndata: b\n\n"
