"""iperf3 front-end: options, version gates, JSON output."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError, FeatureUnavailableError
from repro.core.rng import RngFactory
from repro.tools.iperf3 import Iperf3, Iperf3Options
from repro.testbeds.amlight import AmLightTestbed


def run_quick(opts: Iperf3Options, path="lan"):
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    tool = Iperf3(snd, rcv, tb.path(path), rng=RngFactory(2), tick=0.004)
    return tool.run(opts)


class TestOptions:
    def test_defaults(self):
        o = Iperf3Options()
        assert o.parallel == 1 and o.congestion == "cubic"

    def test_invalid_parallel(self):
        with pytest.raises(ConfigurationError):
            Iperf3Options(parallel=0)

    def test_invalid_zerocopy_mode(self):
        with pytest.raises(ConfigurationError):
            Iperf3Options(zerocopy="yes-please")

    def test_parallel_needs_316(self):
        old = Iperf3Options(parallel=8, version="3.12")
        with pytest.raises(FeatureUnavailableError):
            old.validate_tool()
        Iperf3Options(parallel=8, version="3.17").validate_tool()

    def test_zerocopy_z_needs_pr1690(self):
        with pytest.raises(FeatureUnavailableError):
            Iperf3Options(zerocopy="z", has_pr1690=False).validate_tool()
        Iperf3Options(zerocopy="z").validate_tool()

    def test_skip_rx_copy_needs_pr1690(self):
        with pytest.raises(FeatureUnavailableError):
            Iperf3Options(skip_rx_copy=True, has_pr1690=False).validate_tool()

    def test_command_line_rendering(self):
        o = Iperf3Options(
            parallel=8, duration=60, fq_rate_gbps=15, zerocopy="z",
            skip_rx_copy=True, congestion="bbr3",
        )
        cmd = o.command_line()
        assert "-P 8" in cmd
        assert "--fq-rate 15G" in cmd
        assert "--zerocopy=z" in cmd
        assert "--skip-rx-copy" in cmd
        assert "-C bbr3" in cmd
        assert "-J" in cmd

    def test_sendfile_renders_dash_z(self):
        assert "-Z" in Iperf3Options(zerocopy="sendfile").command_line()

    def test_to_flowspecs(self):
        o = Iperf3Options(parallel=3, fq_rate_gbps=10, zerocopy="z")
        specs = o.to_flowspecs(qdisc="fq")
        assert len(specs) == 3
        assert all(s.zerocopy for s in specs)
        assert all(s.pacing.enabled for s in specs)

    def test_to_flowspecs_unpaced(self):
        specs = Iperf3Options().to_flowspecs(qdisc="fq_codel")
        assert not specs[0].pacing.enabled
        assert specs[0].pacing.qdisc == "fq_codel"


class TestResults:
    def test_json_document_schema(self):
        res = run_quick(Iperf3Options(duration=6, omit=1.5, parallel=2))
        doc = json.loads(res.to_json())
        assert doc["start"]["test_start"]["num_streams"] == 2
        assert doc["end"]["sum_sent"]["bits_per_second"] > 1e9
        assert "retransmits" in doc["end"]["sum_sent"]
        assert len(doc["end"]["streams"]) == 2
        assert "cpu_utilization_percent" in doc["end"]

    def test_summary_line(self):
        res = run_quick(Iperf3Options(duration=6, omit=1.5))
        line = res.summary_line()
        assert "Gbits/sec" in line and "retr" in line

    def test_gbps_consistent_with_streams(self):
        res = run_quick(Iperf3Options(duration=6, omit=1.5, parallel=4))
        assert res.gbps == pytest.approx(res.per_stream_gbps.sum(), rel=1e-6)
