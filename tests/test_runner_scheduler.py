"""Scheduler behaviour: retries, errors, executors, seed derivation."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError, RunnerError
from repro.runner import (
    ProcessExecutor,
    RunnerConfig,
    SerialExecutor,
    TaskSpec,
    run_experiments,
    run_tasks,
    task_seed,
)
from repro.runner.worker import CRASH_ONCE_ENV

from tests._golden import GOLDEN_CONFIG, load_golden


class TestRunnerConfig:
    def test_rejects_zero_jobs(self):
        with pytest.raises(RunnerError):
            RunnerConfig(jobs=0)

    def test_rejects_zero_attempts(self):
        with pytest.raises(RunnerError):
            RunnerConfig(max_attempts=0)

    def test_rejects_negative_retry_backoff(self):
        # A negative backoff used to slip through and reach time.sleep,
        # which raises deep inside the retry loop mid-campaign.
        with pytest.raises(RunnerError, match="retry_backoff"):
            RunnerConfig(retry_backoff=-0.25)

    def test_zero_retry_backoff_is_allowed(self):
        assert RunnerConfig(retry_backoff=0.0).retry_backoff == 0.0


class TestValidation:
    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(ConfigurationError, match="fig99"):
            run_experiments(["fig05", "fig99"], config=GOLDEN_CONFIG)

    def test_empty_campaign(self):
        report = run_tasks([], RunnerConfig(use_cache=False))
        assert report.tasks == [] and not report.all_cached


class TestCrashRetry:
    def test_crashed_worker_is_retried_and_recovers(
        self, tmp_path, monkeypatch
    ):
        sentinel = tmp_path / "crashed-once"
        monkeypatch.setenv(CRASH_ONCE_ENV, f"var:{sentinel}")
        report = run_experiments(
            ["var"],
            config=GOLDEN_CONFIG,
            runner=RunnerConfig(jobs=2, use_cache=False, retry_backoff=0.01),
        )
        assert sentinel.exists()  # the crash really happened
        task = report.by_id("var")
        assert task.attempts == 2
        # and the retried result is still bit-identical to golden
        assert task.result.digest() == load_golden("var")["digest"]

    def test_crash_exhaustion_raises_runner_error(self, monkeypatch):
        monkeypatch.setenv(CRASH_ONCE_ENV, "var:always")
        with pytest.raises(RunnerError, match="var"):
            run_experiments(
                ["var"],
                config=GOLDEN_CONFIG,
                runner=RunnerConfig(
                    jobs=2, use_cache=False, max_attempts=2, retry_backoff=0.01
                ),
            )

    def test_deterministic_experiment_error_propagates_unwrapped(self):
        # an unknown id raises before any pool is built; a worker-side
        # ConfigurationError would pickle back and re-raise the same way
        with pytest.raises(ConfigurationError):
            run_tasks(
                [TaskSpec("no-such-exp", GOLDEN_CONFIG)],
                RunnerConfig(jobs=2, use_cache=False),
            )


class TestTaskSeed:
    def test_deterministic_and_label_sensitive(self):
        assert task_seed(2024, "a") == task_seed(2024, "a")
        assert task_seed(2024, "a") != task_seed(2024, "b")
        assert task_seed(2024, "a") != task_seed(2025, "a")

    def test_spec_labels_distinguish_config(self):
        import dataclasses

        a = TaskSpec("fig05", GOLDEN_CONFIG)
        b = TaskSpec(
            "fig05", dataclasses.replace(GOLDEN_CONFIG, repetitions=3)
        )
        assert a.label != b.label


def _square(x):
    return x * x


class TestExecutors:
    def test_serial_preserves_order(self):
        assert SerialExecutor().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_process_matches_serial(self):
        items = list(range(20))
        assert ProcessExecutor(4).map(_square, items) == [
            SerialExecutor().map(_square, items)[i] for i in range(20)
        ]

    def test_single_job_runs_inline(self):
        assert ProcessExecutor(1).map(_square, [2]) == [4]

    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)
