"""Generator-based process layer."""

from __future__ import annotations

import pytest

from repro.core.engine import Engine
from repro.core.errors import SimulationError
from repro.core.process import Process, Signal


class TestProcess:
    def test_sleep_sequence(self):
        eng = Engine()
        ticks = []

        def proc():
            for _ in range(3):
                yield 0.5
                ticks.append(eng.now)

        Process(eng, proc())
        eng.run()
        assert ticks == [0.5, 1.0, 1.5]

    def test_return_value_captured(self):
        eng = Engine()

        def proc():
            yield 1.0
            return 42

        p = Process(eng, proc())
        eng.run()
        assert p.finished and p.result == 42

    def test_zero_delay_continues_same_time(self):
        eng = Engine()
        times = []

        def proc():
            yield 0.0
            times.append(eng.now)

        Process(eng, proc())
        eng.run()
        assert times == [0.0]

    def test_negative_delay_raises(self):
        eng = Engine()

        def proc():
            yield -1.0

        Process(eng, proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_bad_yield_type_raises(self):
        eng = Engine()

        def proc():
            yield "nonsense"

        Process(eng, proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_interrupt_stops_process(self):
        eng = Engine()
        ran = []

        def proc():
            yield 5.0
            ran.append(True)

        p = Process(eng, proc())
        eng.schedule(1.0, p.interrupt)
        eng.run()
        assert ran == [] and p.finished


class TestSignal:
    def test_signal_wakes_waiters_with_payload(self):
        eng = Engine()
        sig = Signal(eng, "data-ready")
        got = []

        def waiter():
            payload = yield sig
            got.append((eng.now, payload))

        Process(eng, waiter())
        eng.schedule(2.0, lambda: sig.fire("hello"))
        eng.run()
        assert got == [(2.0, "hello")]

    def test_signal_broadcasts(self):
        eng = Engine()
        sig = Signal(eng)
        woken = []

        def waiter(name):
            yield sig
            woken.append(name)

        for n in ("a", "b", "c"):
            Process(eng, waiter(n))
        eng.schedule(1.0, sig.fire)
        eng.run()
        assert sorted(woken) == ["a", "b", "c"]

    def test_fire_count(self):
        eng = Engine()
        sig = Signal(eng)
        eng.schedule(1.0, sig.fire)
        eng.schedule(2.0, sig.fire)
        eng.run()
        assert sig.fire_count == 2

    def test_producer_consumer(self):
        """A small end-to-end scenario: token-bucket style release."""
        eng = Engine()
        sig = Signal(eng, "token")
        consumed = []

        def producer():
            for _ in range(3):
                yield 1.0
                sig.fire()

        def consumer():
            while True:
                yield sig
                consumed.append(eng.now)

        Process(eng, producer())
        Process(eng, consumer())
        eng.run()
        assert consumed == [1.0, 2.0, 3.0]
