"""Registry tying paper-shape tests to the experiments they assert.

Every :class:`~repro.experiments.base.Experiment` subclass carries an
``expectation`` string — the paper's qualitative claim.  Tests in
``tests/test_paper_shapes.py`` declare which experiment's expectation
they assert with the :func:`asserts_expectation` decorator, and
``tests/test_expectation_coverage.py`` fails if any registered
experiment's expectation is asserted nowhere (the ROADMAP lint idea,
delivered as a test).
"""

from __future__ import annotations

COVERED: dict[str, list[str]] = {}

#: The decorated objects themselves, so the coverage meta-test can
#: check *what kind* of thing asserts each expectation — a tagged
#: helper function would satisfy the name registry while pytest never
#: collects it.
ASSERTERS: dict[str, list[object]] = {}


def asserts_expectation(*exp_ids: str):
    """Mark a test class/function as asserting these experiments' claims."""

    def mark(obj):
        for exp_id in exp_ids:
            COVERED.setdefault(exp_id, []).append(obj.__qualname__)
            ASSERTERS.setdefault(exp_id, []).append(obj)
        return obj

    return mark
