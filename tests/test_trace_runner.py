"""Traced campaigns through the runner and the ``repro trace`` CLI.

The determinism contract under test: a traced task's event stream is a
pure function of (code, exp_id, config, trace spec) — worker count,
cache state, and repeated invocation cannot change a byte of the
exported artifact.  Plus the cache interplay: traced tasks always
execute (cached payloads carry no events) but still store results, and
artifacts land next to the cache under ``traces/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.runner import RunnerConfig, run_experiments, run_tasks
from repro.runner.tasks import TaskSpec
from repro.tools.harness import HarnessConfig
from repro.trace import TraceSpec, validate_perfetto
from repro.trace import bus as trace_bus

#: Small-but-real config for runner-level determinism checks; the CLI
#: tests use --profile quick (the CI smoke job's configuration).
TINY = HarnessConfig(repetitions=1, duration=2.0, omit=0.5, tick=0.008)


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    yield
    trace_bus.uninstall()


def traced_runner(tmp_path: Path, jobs: int = 1, **kw) -> RunnerConfig:
    return RunnerConfig(
        jobs=jobs,
        cache_dir=tmp_path / "cache",
        trace=TraceSpec(**kw),
    )


class TestRunnerIntegration:
    def test_traced_task_carries_valid_trace(self, tmp_path):
        report = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path))
        task = report.by_id("fig04")
        assert task.trace is not None
        assert task.trace["events"], "traced run produced no events"
        assert task.trace["dropped"] == 0
        assert validate_perfetto(task.trace["doc"]) == []
        assert task.trace["doc"]["otherData"]["exp_id"] == "fig04"

    def test_untraced_task_has_no_trace(self, tmp_path):
        runner = RunnerConfig(jobs=1, cache_dir=tmp_path / "cache")
        report = run_experiments(["fig04"], config=TINY, runner=runner)
        assert report.by_id("fig04").trace is None
        assert trace_bus.active() is None

    def test_jobs_1_vs_4_identical_digest(self, tmp_path):
        serial = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path / "a"))
        pooled = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path / "b", jobs=4))
        a, b = serial.by_id("fig04").trace, pooled.by_id("fig04").trace
        assert a["digest"] == b["digest"]
        assert a["doc"] == b["doc"]
        assert serial.by_id("fig04").result.digest() == \
            pooled.by_id("fig04").result.digest()

    def test_artifact_persisted_next_to_cache(self, tmp_path):
        report = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path))
        trace = report.by_id("fig04").trace
        path = trace["path"]
        assert path is not None
        assert path.parent == tmp_path / "cache" / "traces"
        doc = json.loads(path.read_text())
        assert validate_perfetto(doc) == []
        assert doc["otherData"]["digest"] == trace["digest"]

    def test_explicit_trace_dir_wins(self, tmp_path):
        runner = RunnerConfig(
            jobs=1,
            cache_dir=tmp_path / "cache",
            trace=TraceSpec(),
            trace_dir=tmp_path / "elsewhere",
        )
        report = run_experiments(["fig04"], config=TINY, runner=runner)
        assert report.by_id("fig04").trace["path"].parent == \
            tmp_path / "elsewhere"

    def test_traced_tasks_bypass_cache_read_but_store(self, tmp_path):
        # Prime the cache untraced...
        plain = RunnerConfig(jobs=1, cache_dir=tmp_path / "cache")
        first = run_experiments(["fig04"], config=TINY, runner=plain)
        assert not first.by_id("fig04").cached
        # ...a traced campaign must execute anyway (no events in cache)
        traced = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path))
        task = traced.by_id("fig04")
        assert not task.cached and task.trace is not None
        # ...and its (trace-independent) rows match the cached ones
        assert task.result.digest() == first.by_id("fig04").result.digest()
        # ...while a later untraced campaign is served from cache
        again = run_experiments(["fig04"], config=TINY, runner=plain)
        assert again.by_id("fig04").cached

    def test_ring_buffer_spec_reaches_worker(self, tmp_path):
        report = run_experiments(
            ["fig04"], config=TINY,
            runner=traced_runner(tmp_path, buffer=64),
        )
        trace = report.by_id("fig04").trace
        assert len(trace["events"]) == 64
        assert trace["dropped"] > 0

    def test_flow_category_optin(self, tmp_path):
        report = run_experiments(
            ["fig04"], config=TINY,
            runner=traced_runner(tmp_path, categories=("flow",)),
        )
        trace = report.by_id("fig04").trace
        assert trace["events"]
        assert {e["cat"] for e in trace["events"]} == {"flow"}

    def test_run_tasks_mixed_traced_and_plain(self, tmp_path):
        specs = [
            TaskSpec(exp_id="fig04", config=TINY, trace=TraceSpec()),
            TaskSpec(exp_id="fig04", config=TINY),
        ]
        report = run_tasks(specs, RunnerConfig(jobs=1,
                                               cache_dir=tmp_path / "cache"))
        assert report.tasks[0].trace is not None
        assert report.tasks[1].trace is None


class TestCli:
    def test_trace_lists_experiments(self, capsys):
        assert main(["trace"]) == 0
        assert "fig09" in capsys.readouterr().out

    def test_trace_fig09_same_seed_byte_identical(self, tmp_path, capsys):
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "fig09", "--profile", "quick",
                     "--out", str(out1), "--validate"]) == 0
        assert "trace schema: ok" in capsys.readouterr().out
        assert main(["trace", "fig09", "--profile", "quick", "--jobs", "4",
                     "--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        doc = json.loads(out1.read_text())
        assert validate_perfetto(doc) == []
        assert doc["otherData"]["exp_id"] == "fig09"

    def test_trace_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "t.csv"
        assert main(["trace", "fig04", "--profile", "quick",
                     "--csv", str(csv)]) == 0
        lines = csv.read_text().strip().split("\n")
        assert lines[0].startswith("seq,t,cat,name,track")
        assert len(lines) > 10

    def test_trace_unknown_experiment_errors(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_unknown_category_errors(self, capsys):
        assert main(["trace", "fig04", "--events", "bogus"]) == 2
        assert "unknown trace categories" in capsys.readouterr().err

    def test_run_with_trace_flag(self, tmp_path, capsys):
        rc = main(["run", "fig04", "--profile", "quick", "--trace",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[trace:" in out
        artifacts = list((tmp_path / "cache" / "traces").glob("*.trace.json"))
        assert len(artifacts) == 1
        assert validate_perfetto(json.loads(artifacts[0].read_text())) == []
