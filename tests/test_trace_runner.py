"""Traced campaigns through the runner and the ``repro trace`` CLI.

The determinism contract under test: a traced task's event stream is a
pure function of (code, exp_id, config, trace spec) — worker count,
cache state, and repeated invocation cannot change a byte of the
exported artifact.  Plus the cache interplay: traced tasks always
execute (cached payloads carry no events) but still store results, and
artifacts land next to the cache under ``traces/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.runner import RunnerConfig, run_experiments, run_tasks
from repro.runner.tasks import TaskSpec
from repro.tools.harness import HarnessConfig
from repro.trace import TraceSpec, validate_perfetto
from repro.trace import bus as trace_bus

#: Small-but-real config for runner-level determinism checks; the CLI
#: tests use --profile quick (the CI smoke job's configuration).
TINY = HarnessConfig(repetitions=1, duration=2.0, omit=0.5, tick=0.008)


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    yield
    trace_bus.uninstall()


def traced_runner(tmp_path: Path, jobs: int = 1, **kw) -> RunnerConfig:
    return RunnerConfig(
        jobs=jobs,
        cache_dir=tmp_path / "cache",
        trace=TraceSpec(**kw),
    )


class TestRunnerIntegration:
    def test_traced_task_carries_valid_trace(self, tmp_path):
        report = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path))
        task = report.by_id("fig04")
        assert task.trace is not None
        assert task.trace["events"], "traced run produced no events"
        assert task.trace["dropped"] == 0
        assert validate_perfetto(task.trace["doc"]) == []
        assert task.trace["doc"]["otherData"]["exp_id"] == "fig04"

    def test_untraced_task_has_no_trace(self, tmp_path):
        runner = RunnerConfig(jobs=1, cache_dir=tmp_path / "cache")
        report = run_experiments(["fig04"], config=TINY, runner=runner)
        assert report.by_id("fig04").trace is None
        assert trace_bus.active() is None

    def test_jobs_1_vs_4_identical_digest(self, tmp_path):
        serial = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path / "a"))
        pooled = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path / "b", jobs=4))
        a, b = serial.by_id("fig04").trace, pooled.by_id("fig04").trace
        assert a["digest"] == b["digest"]
        assert a["doc"] == b["doc"]
        assert serial.by_id("fig04").result.digest() == \
            pooled.by_id("fig04").result.digest()

    def test_artifact_persisted_next_to_cache(self, tmp_path):
        report = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path))
        trace = report.by_id("fig04").trace
        path = trace["path"]
        assert path is not None
        assert path.parent == tmp_path / "cache" / "traces"
        doc = json.loads(path.read_text())
        assert validate_perfetto(doc) == []
        assert doc["otherData"]["digest"] == trace["digest"]

    def test_explicit_trace_dir_wins(self, tmp_path):
        runner = RunnerConfig(
            jobs=1,
            cache_dir=tmp_path / "cache",
            trace=TraceSpec(),
            trace_dir=tmp_path / "elsewhere",
        )
        report = run_experiments(["fig04"], config=TINY, runner=runner)
        assert report.by_id("fig04").trace["path"].parent == \
            tmp_path / "elsewhere"

    def test_traced_tasks_bypass_cache_read_but_store(self, tmp_path):
        # Prime the cache untraced...
        plain = RunnerConfig(jobs=1, cache_dir=tmp_path / "cache")
        first = run_experiments(["fig04"], config=TINY, runner=plain)
        assert not first.by_id("fig04").cached
        # ...a traced campaign must execute anyway (no events in cache)
        traced = run_experiments(["fig04"], config=TINY,
                                 runner=traced_runner(tmp_path))
        task = traced.by_id("fig04")
        assert not task.cached and task.trace is not None
        # ...and its (trace-independent) rows match the cached ones
        assert task.result.digest() == first.by_id("fig04").result.digest()
        # ...while a later untraced campaign is served from cache
        again = run_experiments(["fig04"], config=TINY, runner=plain)
        assert again.by_id("fig04").cached

    def test_ring_buffer_spec_reaches_worker(self, tmp_path):
        report = run_experiments(
            ["fig04"], config=TINY,
            runner=traced_runner(tmp_path, buffer=64),
        )
        trace = report.by_id("fig04").trace
        assert len(trace["events"]) == 64
        assert trace["dropped"] > 0

    def test_flow_category_optin(self, tmp_path):
        report = run_experiments(
            ["fig04"], config=TINY,
            runner=traced_runner(tmp_path, categories=("flow",)),
        )
        trace = report.by_id("fig04").trace
        assert trace["events"]
        assert {e["cat"] for e in trace["events"]} == {"flow"}

    def test_run_tasks_mixed_traced_and_plain(self, tmp_path):
        specs = [
            TaskSpec(exp_id="fig04", config=TINY, trace=TraceSpec()),
            TaskSpec(exp_id="fig04", config=TINY),
        ]
        report = run_tasks(specs, RunnerConfig(jobs=1,
                                               cache_dir=tmp_path / "cache"))
        assert report.tasks[0].trace is not None
        assert report.tasks[1].trace is None


def spill_runner(tmp_path: Path, jobs: int = 1, **kw) -> RunnerConfig:
    return RunnerConfig(
        jobs=jobs,
        cache_dir=tmp_path / "cache",
        trace=TraceSpec(spill_dir=str(tmp_path / "spill"), **kw),
    )


class TestSpillMode:
    def test_spill_payload_shape(self, tmp_path):
        report = run_experiments(["fig04"], config=TINY,
                                 runner=spill_runner(tmp_path))
        trace = report.by_id("fig04").trace
        assert trace["events"] is None and trace["doc"] is None
        assert trace["jsonl"].exists()
        assert trace["count"] > 0 and trace["dropped"] == 0
        # the sink-side high-water mark: resident events bounded by the
        # flush batch, not the stream length
        assert trace["peak_buffered"] <= 256

    def test_spilled_stream_is_finalized_and_consistent(self, tmp_path):
        from repro.trace import stream_summary

        report = run_experiments(["fig04"], config=TINY,
                                 runner=spill_runner(tmp_path))
        trace = report.by_id("fig04").trace
        info = stream_summary(trace["jsonl"])
        assert info.finalized and info.consistent
        assert info.count == trace["count"]
        assert info.digest == trace["digest"]
        assert info.header["meta"]["exp_id"] == "fig04"

    def test_spill_digest_matches_in_memory_run(self, tmp_path):
        spilled = run_experiments(["fig04"], config=TINY,
                                  runner=spill_runner(tmp_path / "a"))
        buffered = run_experiments(["fig04"], config=TINY,
                                   runner=traced_runner(tmp_path / "b"))
        a, b = spilled.by_id("fig04").trace, buffered.by_id("fig04").trace
        assert a["digest"] == b["digest"]
        assert a["count"] == len(b["events"])

    def test_spill_artifact_byte_identical_to_in_memory(self, tmp_path):
        # The streamed Perfetto artifact and the in-memory one are the
        # same bytes: same converter, same canonical serialization.
        spilled = run_experiments(["fig04"], config=TINY,
                                  runner=spill_runner(tmp_path / "a"))
        buffered = run_experiments(["fig04"], config=TINY,
                                   runner=traced_runner(tmp_path / "b"))
        pa = spilled.by_id("fig04").trace["path"]
        pb = buffered.by_id("fig04").trace["path"]
        assert pa is not None and pb is not None
        assert pa.read_bytes() == pb.read_bytes()
        assert validate_perfetto(json.loads(pa.read_text())) == []

    def test_spill_jobs_1_vs_4_byte_identical_jsonl(self, tmp_path):
        serial = run_experiments(["fig04"], config=TINY,
                                 runner=spill_runner(tmp_path / "a"))
        pooled = run_experiments(["fig04"], config=TINY,
                                 runner=spill_runner(tmp_path / "b", jobs=4))
        a = serial.by_id("fig04").trace["jsonl"].read_bytes()
        b = pooled.by_id("fig04").trace["jsonl"].read_bytes()
        assert a == b

    def test_different_seeds_diverge_and_diff_pinpoints(self, tmp_path):
        from dataclasses import replace

        from repro.trace import diff_files

        base = run_experiments(["fig04"], config=TINY,
                               runner=spill_runner(tmp_path / "a"))
        other = run_experiments(["fig04"], config=replace(TINY, seed=2025),
                                runner=spill_runner(tmp_path / "b"))
        pa = base.by_id("fig04").trace["jsonl"]
        pb = other.by_id("fig04").trace["jsonl"]
        diff = diff_files(pa, pb)
        assert not diff.identical
        assert diff.index is not None and diff.fields
        assert diff.digest_a != diff.digest_b

    def test_artifact_names_disambiguate_same_label(self, tmp_path):
        # Same label, different spec → distinct artifact stems; a label
        # with path separators cannot escape the store directory.
        from repro.runner.tasks import sanitize_label

        from dataclasses import replace

        s1 = TaskSpec(exp_id="fig04", config=TINY, trace=TraceSpec())
        s2 = TaskSpec(exp_id="fig04", config=TINY,
                      trace=TraceSpec(interval=0.1))
        # trace spec is not part of the content key (results/events are
        # trace-config independent), so these share a stem...
        assert s1.artifact_stem == s2.artifact_stem
        # ...but any config change (here: seed) yields a distinct stem,
        # even when the two labels sanitize to the same string
        s3 = TaskSpec(exp_id="fig04", config=replace(TINY, seed=1))
        assert s1.artifact_stem != s3.artifact_stem
        evil = TaskSpec(exp_id="../../evil/fig04", config=TINY)
        assert "/" not in evil.artifact_stem
        assert not evil.artifact_stem.startswith(".")
        assert sanitize_label("a/b,c d") == "a_b_c_d"
        assert sanitize_label("...") == "task"

    def test_scheduler_writes_artifact_under_sanitized_stem(self, tmp_path):
        from repro.runner.scheduler import _trace_summary

        spec = TaskSpec(exp_id="x/../y", config=TINY, trace=TraceSpec())
        payload = {"trace": {
            "events": [{"seq": 0, "t": 0.0, "cat": "cc", "name": "cc.loss",
                        "track": "", "args": {}}],
            "dropped": 0, "emitted": 1, "digest": "d" * 64,
        }}
        store = tmp_path / "store"
        summary = _trace_summary(spec, payload, store)
        assert summary["path"].parent == store
        assert summary["path"].name.endswith(".trace.json")
        assert "/" not in summary["path"].name
        assert summary["path"].exists()


class TestCli:
    def test_trace_lists_experiments(self, capsys):
        assert main(["trace"]) == 0
        assert "fig09" in capsys.readouterr().out

    def test_trace_fig09_same_seed_byte_identical(self, tmp_path, capsys):
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["trace", "fig09", "--profile", "quick",
                     "--out", str(out1), "--validate"]) == 0
        assert "trace schema: ok" in capsys.readouterr().out
        assert main(["trace", "fig09", "--profile", "quick", "--jobs", "4",
                     "--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        doc = json.loads(out1.read_text())
        assert validate_perfetto(doc) == []
        assert doc["otherData"]["exp_id"] == "fig09"

    def test_trace_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "t.csv"
        assert main(["trace", "fig04", "--profile", "quick",
                     "--csv", str(csv)]) == 0
        lines = csv.read_text().strip().split("\n")
        assert lines[0].startswith("seq,t,cat,name,track")
        assert len(lines) > 10

    def test_trace_unknown_experiment_errors(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_unknown_category_errors(self, capsys):
        assert main(["trace", "fig04", "--events", "bogus"]) == 2
        assert "unknown trace categories" in capsys.readouterr().err

    def test_run_with_trace_flag(self, tmp_path, capsys):
        rc = main(["run", "fig04", "--profile", "quick", "--trace",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[trace:" in out
        artifacts = list((tmp_path / "cache" / "traces").glob("*.trace.json"))
        assert len(artifacts) == 1
        assert validate_perfetto(json.loads(artifacts[0].read_text())) == []

    def test_run_spill_without_trace_errors(self, tmp_path, capsys):
        rc = main(["run", "fig04", "--profile", "quick",
                   "--spill", str(tmp_path / "spill"),
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 2
        assert "--spill" in capsys.readouterr().err


class TestCliSpillAndDiff:
    def test_spilled_out_matches_in_memory_out(self, tmp_path, capsys):
        plain, spilled = tmp_path / "plain.json", tmp_path / "spilled.json"
        assert main(["trace", "fig04", "--profile", "quick",
                     "--out", str(plain)]) == 0
        assert main(["trace", "fig04", "--profile", "quick",
                     "--spill", str(tmp_path / "spill"),
                     "--out", str(spilled), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "[spill:" in out
        assert "trace schema: ok" in out
        assert plain.read_bytes() == spilled.read_bytes()
        assert list((tmp_path / "spill").glob("*.trace.jsonl"))

    def test_spilled_csv_matches_in_memory_csv(self, tmp_path):
        plain, spilled = tmp_path / "plain.csv", tmp_path / "spilled.csv"
        assert main(["trace", "fig04", "--profile", "quick",
                     "--csv", str(plain)]) == 0
        assert main(["trace", "fig04", "--profile", "quick",
                     "--spill", str(tmp_path / "spill"),
                     "--csv", str(spilled)]) == 0
        assert plain.read_bytes() == spilled.read_bytes()

    def test_diff_identical_traces_exit_zero(self, tmp_path, capsys):
        for sub in ("a", "b"):
            assert main(["trace", "fig04", "--profile", "quick",
                         "--spill", str(tmp_path / sub)]) == 0
        pa = next((tmp_path / "a").glob("*.trace.jsonl"))
        pb = next((tmp_path / "b").glob("*.trace.jsonl"))
        assert main(["trace", "--diff", str(pa), str(pb)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_seeds_exit_one(self, tmp_path, capsys):
        assert main(["trace", "fig04", "--profile", "quick",
                     "--spill", str(tmp_path / "a")]) == 0
        assert main(["trace", "fig04", "--profile", "quick", "--seed", "7",
                     "--spill", str(tmp_path / "b")]) == 0
        pa = next((tmp_path / "a").glob("*.trace.jsonl"))
        pb = next((tmp_path / "b").glob("*.trace.jsonl"))
        assert main(["trace", "--diff", str(pa), str(pb)]) == 1
        out = capsys.readouterr().out
        assert "first divergence" in out
        assert "seq" in out

    def test_diff_with_experiment_id_errors(self, tmp_path, capsys):
        rc = main(["trace", "fig04", "--diff", "a", "b"])
        assert rc == 2
        assert "--diff" in capsys.readouterr().err

    def test_diff_missing_file_errors(self, tmp_path, capsys):
        rc = main(["trace", "--diff", str(tmp_path / "no.jsonl"),
                   str(tmp_path / "pe.jsonl")])
        assert rc == 2
        assert "no such trace artifact" in capsys.readouterr().err
