"""Congestion-control algorithms: CUBIC, Reno, BBRv1/v3."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.tcp.cc import Bbr1, Bbr3, Cubic, Reno, make_cc

MSS = 8960.0
RTT = 0.05


def drive(cc, seconds, rate, rtt=RTT, dt=0.002):
    """Feed the CC a steady delivery rate for a while."""
    now = 0.0
    for _ in range(int(seconds / dt)):
        now += dt
        cc.on_tick(now, dt, rate * dt, rtt)
    return now


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("cubic", Cubic), ("reno", Reno), ("bbr", Bbr1),
        ("bbr1", Bbr1), ("bbr3", Bbr3), ("CUBIC", Cubic),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_cc(name), cls)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_cc("vegas")


class TestSlowStart:
    @pytest.mark.parametrize("cls", [Cubic, Reno])
    def test_doubles_per_rtt(self, cls):
        cc = cls(mss=MSS)
        start = cc.cwnd_bytes
        # deliver exactly one cwnd per RTT for 3 RTTs, tick = RTT
        now = 0.0
        for _ in range(3):
            now += RTT
            cc.on_tick(now, RTT, cc.cwnd_bytes, RTT)
        assert cc.cwnd_bytes == pytest.approx(start * 8, rel=0.01)

    def test_slow_start_ends_at_ssthresh(self):
        cc = Reno(mss=MSS)
        cc.state.ssthresh_bytes = 40 * MSS
        drive(cc, 2.0, rate=100 * MSS / RTT)
        assert not cc.state.in_slow_start


class TestLossReaction:
    def test_cubic_beta(self):
        cc = Cubic(mss=MSS)
        drive(cc, 1.0, rate=2000 * MSS / RTT)
        before = cc.cwnd_bytes
        assert cc.on_loss(10.0, RTT)
        assert cc.cwnd_bytes == pytest.approx(before * Cubic.BETA, rel=0.01)

    def test_reno_halves(self):
        cc = Reno(mss=MSS)
        drive(cc, 1.0, rate=2000 * MSS / RTT)
        before = cc.cwnd_bytes
        assert cc.on_loss(10.0, RTT)
        assert cc.cwnd_bytes == pytest.approx(before * 0.5, rel=0.01)

    def test_loss_rate_limited_to_one_per_rtt(self):
        cc = Cubic(mss=MSS)
        drive(cc, 1.0, rate=2000 * MSS / RTT)
        assert cc.on_loss(10.0, RTT)
        assert not cc.on_loss(10.0 + RTT / 4, RTT)  # too soon
        assert cc.on_loss(10.0 + 1.5 * RTT, RTT)
        assert cc.loss_events == 2

    def test_bbr1_ignores_loss(self):
        cc = Bbr1(mss=MSS)
        drive(cc, 1.0, rate=2000 * MSS / RTT)
        before = cc.cwnd_bytes
        cc.on_loss(10.0, RTT)  # counted but no reduction
        assert cc.cwnd_bytes == pytest.approx(before)
        assert cc.loss_events == 1

    def test_bbr3_reduces_on_loss(self):
        cc = Bbr3(mss=MSS)
        drive(cc, 2.0, rate=2000 * MSS / RTT)
        before = cc.cwnd_bytes
        cc.on_loss(10.0, RTT)
        assert cc.cwnd_bytes < before


class TestCubicDynamics:
    def test_concave_recovery_toward_wmax(self):
        """After a loss, CUBIC climbs back toward W_max and plateaus."""
        cc = Cubic(mss=MSS)
        drive(cc, 1.0, rate=4000 * MSS / RTT)
        w_loss = cc.cwnd_bytes
        cc.on_loss(1.0, RTT)
        # long recovery drive
        drive(cc, 30.0, rate=4000 * MSS / RTT)
        assert cc.cwnd_bytes >= w_loss * 0.95

    def test_app_limited_freezes_clock(self):
        cc = Cubic(mss=MSS)
        drive(cc, 1.0, rate=2000 * MSS / RTT)
        cc.on_loss(1.0, RTT)
        w = cc.cwnd_bytes
        # app-limited for 10 s: the cubic clock must not advance
        now = 1.0
        for _ in range(1000):
            now += 0.01
            cc.on_app_limited(now, 0.01)
        assert cc.cwnd_bytes == pytest.approx(w)
        # resume: growth picks up from where it left off, not a jump
        cc.on_tick(now + 0.002, 0.002, 2000 * MSS * 0.002 / RTT, RTT)
        assert cc.cwnd_bytes < w * 1.05

    def test_clamp(self):
        cc = Cubic(mss=MSS)
        drive(cc, 1.0, rate=5000 * MSS / RTT)
        cc.clamp(50 * MSS)
        assert cc.cwnd_bytes == 50 * MSS


class TestBbrPhases:
    def test_startup_then_probe(self):
        cc = Bbr1(mss=MSS)
        rate = 1000 * MSS / RTT
        now = 0.0
        for _ in range(int(5.0 / 0.01)):
            now += 0.01
            cc.on_tick(now, 0.01, rate * 0.01, RTT)
        assert cc.phase == "PROBE_BW"
        assert cc.btl_bw == pytest.approx(rate, rel=0.05)

    def test_pacing_rate_above_zero(self):
        cc = Bbr1(mss=MSS)
        rate = 1000 * MSS / RTT
        drive(cc, 5.0, rate, dt=0.01)
        pr = cc.pacing_rate(RTT)
        assert pr is not None and pr > 0

    def test_bbr_needs_no_cwnd_validation(self):
        assert Bbr1.needs_cwnd_validation is False
        assert Cubic.needs_cwnd_validation is True

    def test_rt_prop_tracks_minimum(self):
        cc = Bbr1(mss=MSS)
        cc.on_tick(0.01, 0.01, 1e6, 0.05)
        cc.on_tick(0.02, 0.01, 1e6, 0.03)
        cc.on_tick(0.03, 0.01, 1e6, 0.08)
        assert cc.rt_prop == pytest.approx(0.03)

    def test_loss_based_pacing_none(self):
        assert Cubic(mss=MSS).pacing_rate(RTT) is None
        assert Reno(mss=MSS).pacing_rate(RTT) is None
