"""Unit conversion helpers — the factor-of-8 bug firewall."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units


class TestRates:
    def test_gbps_roundtrip(self):
        assert units.to_gbps(units.gbps(100.0)) == pytest.approx(100.0)

    def test_gbps_is_decimal_bits(self):
        # 1 Gbps = 1e9 bits/s = 125e6 bytes/s
        assert units.gbps(1.0) == pytest.approx(125e6)

    def test_mbps(self):
        assert units.mbps(1000.0) == pytest.approx(units.gbps(1.0))
        assert units.to_mbps(units.gbps(1.0)) == pytest.approx(1000.0)

    @given(st.floats(min_value=1e-3, max_value=1e6, allow_nan=False))
    def test_roundtrip_property(self, value):
        assert units.to_gbps(units.gbps(value)) == pytest.approx(value, rel=1e-12)


class TestSizes:
    def test_binary_sizes(self):
        assert units.kib(1) == 1024
        assert units.mib(1) == 1024**2
        assert units.to_mib(units.mib(3.25)) == pytest.approx(3.25)

    def test_optmem_paper_value_is_about_3_25_mib(self):
        # the paper's empirically best optmem_max
        assert units.to_mib(3405376) == pytest.approx(3.25, abs=0.01)


class TestTime:
    def test_ms_us(self):
        assert units.ms(104) == pytest.approx(0.104)
        assert units.us(100) == pytest.approx(1e-4)
        assert units.seconds_to_ms(0.054) == pytest.approx(54.0)


class TestBdp:
    def test_bdp_100g_104ms(self):
        # 100 Gbps over 104 ms holds 1.3 GB in flight
        bdp = units.bdp_bytes(units.gbps(100), units.ms(104))
        assert bdp == pytest.approx(1.3e9, rel=0.01)

    @given(
        st.floats(min_value=1.0, max_value=400.0),
        st.floats(min_value=0.0001, max_value=0.5),
    )
    def test_bdp_scales_linearly(self, gbps_value, rtt):
        one = units.bdp_bytes(units.gbps(gbps_value), rtt)
        two = units.bdp_bytes(units.gbps(2 * gbps_value), rtt)
        assert two == pytest.approx(2 * one, rel=1e-9)


class TestFormatting:
    def test_fmt_gbps(self):
        assert units.fmt_gbps(units.gbps(49.94)) == "49.9 Gbps"
        assert units.fmt_gbps(units.gbps(49.9412), digits=2) == "49.94 Gbps"

    def test_fmt_bytes(self):
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(2048) == "2.0 KiB"
        assert units.fmt_bytes(3405376) == "3.2 MiB"
        assert units.fmt_bytes(2**31) == "2.0 GiB"

    @given(st.floats(min_value=0, max_value=1e15))
    def test_fmt_bytes_never_crashes(self, value):
        assert isinstance(units.fmt_bytes(value), str)


class TestGhz:
    def test_ghz(self):
        assert units.ghz(3.6) == pytest.approx(3.6e9)
