"""CPU cost model: anchors, closed-form solver, aggregate ceilings."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units
from repro.host.machine import Host
from repro.host.numa import CorePlacement
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_BEST_WAN, OPTMEM_DEFAULT, Sysctls
from repro.host.tuning import HostTuning
from repro.sim.cpumodel import CpuCostModel
from repro.tcp.segment import SegmentGeometry
from repro.testbeds.profiles import paper_host


def make_model(
    cpu="intel",
    nic="cx5",
    kernel="6.8",
    zerocopy=False,
    skip_rx_copy=False,
    optmem=OPTMEM_1MB,
    mtu=9000,
    gso=65536.0,
):
    host = paper_host("h", cpu=cpu, nic=nic, kernel=kernel, optmem_max=optmem, mtu=mtu)
    geom = SegmentGeometry(mtu=mtu, gso_size=gso, gro_size=gso)
    placement = CorePlacement.paper_pinned(host.numa)
    return CpuCostModel(
        host, geom, placement, zerocopy=zerocopy, skip_rx_copy=skip_rx_copy
    )


class TestCalibrationAnchors:
    """The single-stream anchors the whole reproduction hangs on."""

    def test_intel_lan_sender_near_55g(self):
        m = make_model()
        limit = m.sender_cpu_rate_limit(rtt=0.0002, footprint_bytes=4e6)
        assert units.to_gbps(limit) == pytest.approx(52, rel=0.08)

    def test_amd_lan_sender_near_42g(self):
        m = make_model(cpu="amd", nic="cx7")
        limit = m.sender_cpu_rate_limit(rtt=0.0001, footprint_bytes=4e6)
        assert units.to_gbps(limit) == pytest.approx(41, rel=0.08)

    def test_intel_wan_default_sender_mid_30s(self):
        m = make_model()
        limit = m.sender_cpu_rate_limit(rtt=0.054, footprint_bytes=250e6)
        assert 30 < units.to_gbps(limit) < 40

    def test_amd_wan_default_much_slower(self):
        """Fig 6: AMD default WAN ~40-50% below its LAN."""
        m = make_model(cpu="amd", nic="cx7")
        lan = m.sender_cpu_rate_limit(rtt=0.0001, footprint_bytes=4e6)
        wan = m.sender_cpu_rate_limit(rtt=0.047, footprint_bytes=150e6)
        assert 0.45 < wan / lan < 0.65

    def test_receiver_limits(self):
        m = make_model()
        intel_rx = m.receiver_cpu_rate_limit(rtt=0.0002)
        assert units.to_gbps(intel_rx) == pytest.approx(55, rel=0.10)
        amd = make_model(cpu="amd", nic="cx7")
        amd_rx = amd.receiver_cpu_rate_limit(rtt=0.0001)
        assert units.to_gbps(amd_rx) == pytest.approx(44, rel=0.10)


class TestZerocopySolver:
    def test_closed_form_is_fixed_point(self):
        """The closed-form saturation rate must satisfy
        rate * cost(rate) == core budget."""
        m = make_model(zerocopy=True)
        for rtt in (0.0002, 0.025, 0.054, 0.104):
            limit = m.sender_cpu_rate_limit(rtt=rtt, footprint_bytes=1.5 * limit_guess(rtt))
            costs = m.sender_costs(limit, rtt, 1.5 * limit_guess(rtt))
            spent = limit * costs.app_cyc_per_byte
            assert spent == pytest.approx(m.core_budget_cyc_per_sec, rel=0.02)

    def test_zerocopy_much_cheaper_when_covered(self):
        plain = make_model()
        zc = make_model(zerocopy=True, optmem=OPTMEM_BEST_WAN)
        rtt, foot = 0.054, 300e6
        assert zc.sender_cpu_rate_limit(rtt, foot) > 1.5 * plain.sender_cpu_rate_limit(rtt, foot)

    def test_default_optmem_worse_than_no_zerocopy(self):
        """Fig. 9's warning: zerocopy with 20 KB optmem burns MORE CPU."""
        plain = make_model()
        starved = make_model(zerocopy=True, optmem=OPTMEM_DEFAULT)
        rtt, foot = 0.054, 300e6
        rate = units.gbps(20)
        assert (
            starved.sender_costs(rate, rtt, foot).app_cyc_per_byte
            > plain.sender_costs(rate, rtt, foot).app_cyc_per_byte
        )

    def test_more_optmem_monotone(self):
        rtt, foot = 0.104, 400e6
        limits = [
            make_model(zerocopy=True, optmem=om).sender_cpu_rate_limit(rtt, foot)
            for om in (OPTMEM_DEFAULT, OPTMEM_1MB, OPTMEM_BEST_WAN)
        ]
        assert limits[0] < limits[1] < limits[2]

    @given(st.floats(min_value=0.0005, max_value=0.2))
    def test_limit_positive_and_finite(self, rtt):
        m = make_model(zerocopy=True)
        limit = m.sender_cpu_rate_limit(rtt, footprint_bytes=1e8)
        assert 0 < limit < 1e12


def limit_guess(rtt: float) -> float:
    """Rough inflight bytes for fixed-point checking."""
    return units.gbps(45) * rtt + 8e6


class TestCacheFactor:
    def test_lan_footprint_near_one(self):
        m = make_model()
        assert m.cache_factor(2e6) == pytest.approx(1.0, abs=0.01)

    def test_wan_footprint_saturates(self):
        m = make_model()
        assert m.cache_factor(500e6) > 1.4

    def test_amd_penalty_steeper(self):
        intel = make_model()
        amd = make_model(cpu="amd", nic="cx7")
        assert amd.cache_factor(300e6) > intel.cache_factor(300e6)

    @given(st.floats(min_value=0, max_value=1e10))
    def test_monotone_nondecreasing(self, foot):
        m = make_model()
        assert m.cache_factor(foot) <= m.cache_factor(foot * 2 + 1)


class TestBigTcpEffect:
    def test_bigger_gso_cheaper_sender(self):
        small = make_model()
        big = make_model(gso=153600.0)
        rtt, foot = 0.054, 250e6
        gain = big.sender_cpu_rate_limit(rtt, foot) / small.sender_cpu_rate_limit(rtt, foot)
        assert 1.05 < gain < 1.25  # paper: up to +16%


class TestSkipRxCopy:
    def test_skip_rx_copy_removes_app_cost(self):
        normal = make_model()
        skipped = make_model(skip_rx_copy=True)
        rate = units.gbps(40)
        a = normal.receiver_costs(rate, 0.054).app_cyc_per_byte
        b = skipped.receiver_costs(rate, 0.054).app_cyc_per_byte
        assert b < a / 5


class TestHwGro:
    def test_hw_gro_helps_most_at_1500_mtu(self):
        soft_9k = make_model(cpu="amd", nic="cx7", kernel="6.8", mtu=9000)
        hard_9k = make_model(cpu="amd", nic="cx7", kernel="6.11", mtu=9000)
        soft_15 = make_model(cpu="amd", nic="cx7", kernel="6.8", mtu=1500)
        hard_15 = make_model(cpu="amd", nic="cx7", kernel="6.11", mtu=1500)
        gain_9k = hard_9k.receiver_cpu_rate_limit(0.0001) / soft_9k.receiver_cpu_rate_limit(0.0001)
        gain_15 = hard_15.receiver_cpu_rate_limit(0.0001) / soft_15.receiver_cpu_rate_limit(0.0001)
        assert gain_15 > gain_9k >= 1.0
        assert gain_15 > 1.8  # paper: +160% at 1500B


class TestAggregates:
    def test_zerocopy_raises_tx_ceiling(self):
        plain = make_model()
        zc = make_model(zerocopy=True)
        assert zc.aggregate_tx_ceiling() > plain.aggregate_tx_ceiling()

    def test_amd_aggregate_far_above_intel(self):
        intel = make_model()
        amd = make_model(cpu="amd", nic="cx7")
        assert amd.aggregate_tx_ceiling() > 2 * intel.aggregate_tx_ceiling()

    def test_esnet_lan_aggregate_anchor(self):
        """Table I: unpaced 8-flow LAN ~166 Gbps on kernel 5.15."""
        m = make_model(cpu="amd", nic="cx7", kernel="5.15")
        assert units.to_gbps(m.aggregate_tx_ceiling()) == pytest.approx(166, rel=0.06)

    def test_iommu_translated_halves_aggregate(self):
        host = paper_host("h", cpu="amd", nic="cx7", kernel="5.15")
        host_no_pt = host.set(tuning=host.tuning.set(iommu_passthrough=False))
        geom = SegmentGeometry(mtu=9000)
        placement = CorePlacement.paper_pinned(host.numa)
        with_pt = CpuCostModel(host, geom, placement).aggregate_tx_ceiling()
        without = CpuCostModel(host_no_pt, geom, placement).aggregate_tx_ceiling()
        assert with_pt / without == pytest.approx(2.2, rel=0.05)
