"""End-to-end tests for the ``repro serve`` daemon.

One live server per module (real sockets, real worker pool) exercised
through :class:`~repro.serve.client.ServeClient`.  The tests pin the
acceptance contract: digest parity with the batch runner, cache-hit
answers that never touch the pool, single-flight coalescing of
identical in-flight configs, O(1) result lookup, and SSE trace tails.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses

import pytest

from repro.experiments import run_experiment
from repro.serve import ServeClient, ServeClientError, ServeConfig, running_server

from tests._golden import GOLDEN_CONFIG, load_golden


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    config = ServeConfig(
        port=0,  # ephemeral — parallel test runs must not collide
        workers=2,
        cache_dir=tmp_path_factory.mktemp("serve-cache"),
    )
    with running_server(config) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServeClient(server.config.host, server.port)


class TestHealthAndStats:
    def test_healthz(self, client):
        doc = client.healthz()
        assert doc["ok"] is True
        assert doc["experiments"] >= 26
        assert doc["workers"] == 2

    def test_stats_shape(self, client):
        doc = client.stats()
        for field in (
            "requests", "submitted", "hits", "misses", "coalesced",
            "in_flight", "dispatched", "pool_rebuilds", "cache",
        ):
            assert field in doc


class TestSubmit:
    def test_cold_submit_matches_direct_run_digest(self, client):
        # The acceptance invariant: a digest served by the daemon is
        # byte-identical to the batch runner's for the same config.
        doc = client.submit("var", config=GOLDEN_CONFIG)
        assert doc["cached"] is False and doc["coalesced"] is False
        assert doc["digest"] == load_golden("var")["digest"]
        assert doc["digest"] == run_experiment("var", GOLDEN_CONFIG).digest()

    def test_warm_resubmit_is_a_cache_hit(self, client):
        before = client.stats()
        doc = client.submit("var", config=GOLDEN_CONFIG)
        after = client.stats()
        assert doc["cached"] is True
        assert doc["digest"] == load_golden("var")["digest"]
        assert after["hits"] == before["hits"] + 1
        # A hit answers from storage without dispatching to the pool.
        assert after["dispatched"] == before["dispatched"]

    def test_identical_inflight_submits_coalesce(self, client):
        # A fresh config (seed bump) so neither request can be a cache
        # hit: the two must collapse onto one underlying execution.
        config = dataclasses.replace(GOLDEN_CONFIG, seed=GOLDEN_CONFIG.seed + 1)
        before = client.stats()
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            futs = [
                pool.submit(client.submit, "var", config) for _ in range(2)
            ]
            docs = [f.result() for f in futs]
        after = client.stats()
        assert docs[0]["digest"] == docs[1]["digest"]
        assert sorted(d["coalesced"] for d in docs) == [False, True]
        assert after["coalesced"] == before["coalesced"] + 1
        assert after["dispatched"] == before["dispatched"] + 1

    def test_profile_submission(self, client):
        doc = client.submit("var", profile="quick")
        assert doc["digest"]

    def test_unknown_experiment_is_404(self, client):
        with pytest.raises(ServeClientError) as caught:
            client.submit("fig99", config=GOLDEN_CONFIG)
        assert caught.value.status == 404

    def test_bad_config_is_400(self, client):
        with pytest.raises(ServeClientError) as caught:
            client.submit("var", config={"repetitions": "many"})
        assert caught.value.status == 400

    def test_missing_exp_id_is_400(self, client):
        with pytest.raises(ServeClientError) as caught:
            client._request("POST", "/experiments", {"config": {}})
        assert caught.value.status == 400


class TestResults:
    def test_lookup_by_digest(self, client):
        digest = client.submit("var", config=GOLDEN_CONFIG)["digest"]
        doc = client.result(digest)
        assert doc["digest"] == digest
        assert doc["exp_id"] == "var"
        assert doc["result"] == run_experiment("var", GOLDEN_CONFIG).to_dict()

    def test_lookup_by_cache_key(self, client):
        submitted = client.submit("var", config=GOLDEN_CONFIG)
        doc = client.result(submitted["key"])
        assert doc["digest"] == submitted["digest"]

    def test_unknown_digest_is_404(self, client):
        with pytest.raises(ServeClientError) as caught:
            client.result("f" * 64)
        assert caught.value.status == 404


class TestTraceTail:
    def test_traced_run_streams_header_events_end(self, client):
        doc = client.submit("var", config=GOLDEN_CONFIG, trace=True)
        assert doc["digest"] == load_golden("var")["digest"]  # unchanged
        frames = client.tail(doc["digest"])
        events = [f["event"] for f in frames]
        assert events[0] == "header"
        assert events[-1] == "end"
        assert events.count("message") >= 1
        # Every message frame is one canonical JSONL trace line.
        for frame in frames:
            if frame["event"] == "message":
                assert isinstance(frame["data"], dict)

    def test_limit_truncates_the_stream(self, client):
        doc = client.submit("var", config=GOLDEN_CONFIG, trace=True)
        frames = client.tail(doc["digest"], limit=1)
        assert [f["event"] for f in frames if f["event"] == "message"] == [
            "message"
        ]

    def test_untraced_digest_has_no_tail(self, client):
        # A config that only ever ran untraced (same key as a traced
        # run would legitimately have a tail).
        config = dataclasses.replace(GOLDEN_CONFIG, seed=GOLDEN_CONFIG.seed + 2)
        digest = client.submit("var", config=config)["digest"]
        with pytest.raises(ServeClientError) as caught:
            client.tail(digest)
        assert caught.value.status == 404


class TestRouting:
    def test_post_to_get_only_route_is_405(self, client):
        with pytest.raises(ServeClientError) as caught:
            client._request("POST", "/healthz", {"x": 1})
        assert caught.value.status == 405

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as caught:
            client._request("GET", "/nope")
        assert caught.value.status == 404

    def test_unsupported_method_is_405(self, client):
        import http.client

        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=30
        )
        try:
            conn.request("DELETE", "/stats")
            assert conn.getresponse().status == 405
        finally:
            conn.close()


class TestConnectionReuse:
    def test_keep_alive_serves_many_requests_per_connection(self, server):
        import http.client
        import json as json_mod

        conn = http.client.HTTPConnection(
            server.config.host, server.port, timeout=30
        )
        try:
            answers = []
            for _ in range(5):
                conn.request("GET", "/healthz")
                reply = conn.getresponse()
                answers.append(json_mod.loads(reply.read()))
                assert reply.status == 200
            assert all(a["ok"] for a in answers)
        finally:
            conn.close()
