"""The repro.trace observability subsystem.

Covers the four tentpole pieces from the inside out:

* the event bus (sequencing, category filtering, edge triggers, scoped
  tracks) and both sinks, including ring-buffer overflow accounting;
* exporters — Perfetto/Chrome ``trace_event`` JSON validated against
  the shipped schema checker, CSV, and digest stability;
* the per-flow conservation ledger, both on synthetic streams and live
  inside a sanitized simulation (including a fault injection the
  link-level sanitizer cannot see);
* the zero-cost-when-disabled and deterministic-when-enabled contracts
  on real :class:`~repro.sim.flowsim.FlowSimulator` runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SanitizerViolation, SimulationError
from repro.core.rng import RngFactory
from repro.sim import sanitizer
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.testbeds.amlight import AmLightTestbed
from repro.trace import (
    CATEGORIES,
    DEFAULT_EXPORT_CATEGORIES,
    FlowConservationLedger,
    ListSink,
    RingSink,
    TraceBus,
    TraceEvent,
    TraceSpec,
    dump_perfetto,
    events_digest,
    to_csv,
    to_perfetto,
    tracing,
    validate_perfetto,
)
from repro.trace import bus as trace_bus


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    yield
    trace_bus.uninstall()
    sanitizer.reset()


def quick_sim(seed: int = 3, path: str = "wan54", **flow_kw) -> FlowSimulator:
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    return FlowSimulator(
        snd, rcv, tb.path(path),
        flows=[FlowSpec(**flow_kw)],
        profile=SimProfile.quick(),
        rng=RngFactory(seed),
    )


def flow_tick(seq, t, **args) -> TraceEvent:
    base = dict(flow=0, sent=1000.0, delivered=900.0, dropped=100.0,
                alloc=1e6, cwnd=1e5, rtt=0.05)
    base.update(args)
    return TraceEvent(seq=seq, t=t, cat="flow", name="flow.tick", args=base)


class TestBus:
    def test_emit_sequences_and_timestamps(self):
        sink = ListSink()
        bus = TraceBus(sinks=[sink])
        bus.set_time(1.5)
        bus.emit("run", "run.start", rep=0)
        bus.set_time(2.0)
        bus.emit("cc", "cc.loss", flow=1)
        assert [e.seq for e in sink.events] == [0, 1]
        assert [e.t for e in sink.events] == [1.5, 2.0]
        assert bus.emitted == 2

    def test_unwanted_category_costs_no_event(self):
        sink = ListSink(categories=["cc"])
        bus = TraceBus(sinks=[sink])
        assert bus.wants("cc") and not bus.wants("flow")
        assert bus.emit("flow", "flow.tick") is None
        assert bus.emitted == 0
        bus.emit("cc", "cc.loss")
        assert len(sink.events) == 1

    def test_per_sink_filtering(self):
        everything = ListSink()
        only_probe = ListSink(categories=["probe"])
        bus = TraceBus(sinks=[everything, only_probe])
        bus.emit("probe", "probe.nic")
        bus.emit("run", "run.end")
        assert len(everything.events) == 2
        assert [e.name for e in only_probe.events] == ["probe.nic"]

    def test_unknown_category_rejected(self):
        with pytest.raises(SimulationError, match="unknown trace categories"):
            ListSink(categories=["bogus"])

    def test_edge_trigger_semantics(self):
        sink = ListSink()
        bus = TraceBus(sinks=[sink])
        # initial falsy observation is silent
        assert bus.emit_edge("k", "switch", "drop", False) is None
        # unchanged: silent; changed: fires
        assert bus.emit_edge("k", "switch", "drop", False) is None
        assert bus.emit_edge("k", "switch", "drop", True) is not None
        assert bus.emit_edge("k", "switch", "drop", True) is None
        assert bus.emit_edge("k", "switch", "drop", False) is not None
        # initial truthy observation fires immediately (separate key)
        assert bus.emit_edge("k2", "switch", "drop", True) is not None
        assert [e.args["value"] for e in sink.events] == [True, False, True]

    def test_scoped_tracks_nest(self):
        sink = ListSink()
        bus = TraceBus(sinks=[sink])
        with bus.scoped("caseA"):
            bus.emit("run", "run.start")
            with bus.scoped("r0"):
                bus.emit("run", "run.end")
        bus.emit("run", "outside")
        assert [e.track for e in sink.events] == ["caseA", "caseA/r0", ""]

    def test_install_does_not_nest(self):
        with tracing():
            assert trace_bus.active() is not None
            with pytest.raises(SimulationError, match="already installed"):
                trace_bus.install(TraceBus())
        assert trace_bus.active() is None

    def test_disabled_by_default(self):
        assert trace_bus.active() is None
        assert trace_bus.flight_recorder_tail() == ""


class TestRingSink:
    def test_overflow_accounting(self):
        ring = RingSink(capacity=4)
        bus = TraceBus(sinks=[ring])
        for i in range(10):
            bus.set_time(float(i))
            bus.emit("engine", "engine.dispatch", seq=i)
        assert ring.written == 10
        assert ring.dropped == 6
        assert [e.args["seq"] for e in ring.events] == [6, 7, 8, 9]

    def test_no_overflow_no_drops(self):
        ring = RingSink(capacity=8)
        bus = TraceBus(sinks=[ring])
        for i in range(5):
            bus.emit("engine", "engine.dispatch", seq=i)
        assert ring.dropped == 0
        assert [e.args["seq"] for e in ring.events] == list(range(5))

    def test_capacity_validated(self):
        with pytest.raises(SimulationError, match="capacity"):
            RingSink(capacity=0)

    def test_flight_recorder_tail_renders(self):
        bus = TraceBus(sinks=[RingSink(capacity=3)])
        with tracing(bus):
            for i in range(5):
                bus.emit("cc", "cc.loss", flow=i)
            tail = trace_bus.flight_recorder_tail()
        assert "flight recorder (last 3 events)" in tail
        assert "cc.loss" in tail and "flow=4" in tail


class TestTraceSpec:
    def test_defaults_exclude_per_tick_flow(self):
        spec = TraceSpec()
        assert spec.resolved_categories() == DEFAULT_EXPORT_CATEGORIES
        assert "flow" not in spec.resolved_categories()
        assert isinstance(spec.make_sink(), ListSink)

    def test_buffer_selects_ring(self):
        sink = TraceSpec(buffer=16).make_sink()
        assert isinstance(sink, RingSink) and sink.capacity == 16

    @pytest.mark.parametrize("kw", [
        {"interval": 0.0},
        {"interval": -1.0},
        {"buffer": -1},
        {"categories": ("nope",)},
    ])
    def test_validation(self, kw):
        with pytest.raises(SimulationError):
            TraceSpec(**kw)


class TestExport:
    def stream(self):
        return [
            TraceEvent(0, 0.0, "run", "run.start", track="fig#r0",
                       args={"rep": 0}),
            TraceEvent(1, 0.25, "probe", "probe.socket", track="fig#r0",
                       args={"flow": 0, "cwnd": 1e6, "rtt_ms": 54.0}),
            TraceEvent(2, 0.5, "flowcontrol", "fc.pause", track="fig#r0",
                       args={"port": "rx-ring", "value": True}),
            TraceEvent(3, 0.75, "probe", "probe.mpstat", track="fig#r1",
                       args={"snd_app_pct": 80.0}),
        ]

    def test_perfetto_is_schema_valid(self):
        doc = to_perfetto(self.stream(), meta={"exp_id": "figX"})
        assert validate_perfetto(doc) == []
        assert doc["otherData"]["exp_id"] == "figX"
        assert doc["otherData"]["event_count"] == 4

    def test_perfetto_structure(self):
        doc = to_perfetto(self.stream())
        events = doc["traceEvents"]
        # one process_name metadata record per distinct track
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["fig#r0", "fig#r1"]
        # probes are counters, suffixed per flow; others instants
        counters = [e for e in events if e["ph"] == "C"]
        assert [c["name"] for c in counters] == [
            "probe.socket/flow0", "probe.mpstat",
        ]
        assert all(
            isinstance(v, (int, float)) for c in counters
            for v in c["args"].values()
        )
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        # simulated seconds -> microseconds
        assert counters[0]["ts"] == 250000.0

    def test_validator_catches_problems(self):
        doc = to_perfetto(self.stream())
        del doc["otherData"]["digest"]
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        counter["args"]["note"] = "not-a-number"
        problems = validate_perfetto(doc)
        assert any("digest" in p for p in problems)
        assert any("numeric" in p for p in problems)

    def test_csv_shape(self):
        text = to_csv(self.stream())
        lines = text.strip().split("\n")
        header = lines[0].split(",")
        assert header[:5] == ["seq", "t", "cat", "name", "track"]
        # first-seen arg order across the stream (args sorted per event)
        assert header[5:] == ["rep", "cwnd", "flow", "rtt_ms", "port",
                              "value", "snd_app_pct"]
        assert len(lines) == 5
        assert lines[2].split(",")[3] == "probe.socket"

    def test_digest_stable_across_forms(self):
        events = self.stream()
        docs = [e.to_dict() for e in events]
        assert events_digest(events) == events_digest(docs)

    def test_dump_is_canonical(self):
        a = dump_perfetto(to_perfetto(self.stream()))
        b = dump_perfetto(to_perfetto([e.to_dict() for e in self.stream()]))
        assert a == b and a.endswith("\n")


class TestLedgerSynthetic:
    def ledger(self) -> FlowConservationLedger:
        return FlowConservationLedger(n_flows=2, mss=1448.0, context="test")

    def test_clean_stream_passes(self):
        led = self.ledger()
        for seq in range(10):
            led.write(flow_tick(seq, seq * 0.01))
        assert led.checks == 10

    def test_negative_bytes_caught(self):
        with pytest.raises(SanitizerViolation, match="negative byte count"):
            self.ledger().write(flow_tick(0, 0.0, sent=-5.0))

    def test_delivered_exceeding_sent_caught(self):
        with pytest.raises(SanitizerViolation, match="cannot deliver"):
            self.ledger().write(flow_tick(0, 0.0, sent=100.0,
                                          delivered=200.0, dropped=0.0))

    def test_vanished_bytes_caught(self):
        with pytest.raises(SanitizerViolation, match="vanished"):
            self.ledger().write(flow_tick(0, 0.0, sent=1000.0,
                                          delivered=100.0, dropped=0.0))

    def test_overdropping_allowed(self):
        # burst-train concentration drops more than one tick's emission
        led = self.ledger()
        led.write(flow_tick(0, 0.0, sent=1000.0, delivered=500.0,
                            dropped=5000.0))
        assert led.checks == 1

    def test_window_overshoot_caught(self):
        with pytest.raises(SanitizerViolation, match="exceeds cwnd"):
            # 1e7 B/s * 0.05 s = 500 KB in flight against a 100 KB window
            self.ledger().write(flow_tick(0, 0.0, alloc=1e7, cwnd=1e5,
                                          rtt=0.05))

    def test_cumulative_delivery_bound(self):
        led = self.ledger()
        # each tick individually fine (delivered == sent), then one tick
        # delivers slightly more than it sent but within per-tick tol...
        led.write(flow_tick(0, 0.0, sent=1000.0, delivered=1000.0, dropped=0.0))
        with pytest.raises(SanitizerViolation, match="cannot deliver"):
            led.write(flow_tick(1, 0.01, sent=0.0, delivered=500.0, dropped=0.0))

    def test_violation_carries_flight_recorder_tail(self):
        bus = TraceBus(sinks=[ListSink()])
        with tracing(bus):
            bus.emit("cc", "cc.loss", flow=0)
            with pytest.raises(SanitizerViolation) as excinfo:
                self.ledger().write(flow_tick(0, 0.0, sent=-5.0))
        assert "flight recorder" in str(excinfo.value)
        assert "cc.loss" in str(excinfo.value)


class TestLedgerLive:
    def test_ledger_runs_under_sanitizer(self):
        sim = quick_sim()
        with sanitizer.sanitized():
            sim.run()
        assert sim.last_ledger is not None
        assert sim.last_ledger.checks > 100

    def test_no_ledger_without_sanitizer(self):
        sim = quick_sim()
        sim.run()
        assert sim.last_ledger is None

    def test_allocator_overshoot_caught_per_flow(self, monkeypatch):
        # An allocator that ignores the cwnd caps conserves bytes at
        # every queue (the link-level sanitizer stays happy) but hands
        # flows more than their window covers — only the per-flow
        # ledger can see that.
        from repro.sim import flowsim as flowsim_mod

        def greedy_allocate(caps, capacity, weights=None, *, validate=True):
            return np.full_like(np.asarray(caps, dtype=float), capacity)

        monkeypatch.setattr(flowsim_mod, "maxmin_allocate", greedy_allocate)
        sim = quick_sim()
        with sanitizer.sanitized():
            with pytest.raises(SanitizerViolation, match="exceeds cwnd"):
                sim.run()


class TestSimTracing:
    def test_disabled_means_no_bus_and_no_events(self):
        assert trace_bus.active() is None
        res = quick_sim().run()
        assert res.total_gbps > 0  # ran fine with zero tracing state

    def test_traced_run_emits_taxonomy(self):
        sink = ListSink()
        with tracing(TraceBus(sinks=[sink], probe_interval=0.25)):
            quick_sim().run()
        names = {e.name for e in sink.events}
        assert {"run.start", "run.end", "probe.socket", "probe.mpstat",
                "probe.nic", "flow.tick"} <= names
        cats = {e.cat for e in sink.events}
        assert cats <= set(CATEGORIES)

    def test_probe_interval_respected(self):
        sink = ListSink(categories=["probe"])
        with tracing(TraceBus(sinks=[sink], probe_interval=1.0)):
            quick_sim().run()
        mpstat = [e for e in sink.events if e.name == "probe.mpstat"]
        # quick profile: 8 s at 1 s stride -> one sample per second
        assert 6 <= len(mpstat) <= 9
        times = [e.t for e in mpstat]
        strides = np.diff(times)
        assert np.allclose(strides, 1.0, atol=0.01)

    def test_same_seed_same_event_stream(self):
        digests = []
        for _ in range(2):
            sink = ListSink()
            with tracing(TraceBus(sinks=[sink])):
                quick_sim(seed=11).run(rep=1)
            digests.append(events_digest(sink.events))
        assert digests[0] == digests[1]

    def test_tracing_does_not_change_results(self):
        plain = quick_sim(seed=7).run(rep=0)
        sink = ListSink()
        with tracing(TraceBus(sinks=[sink])):
            traced = quick_sim(seed=7).run(rep=0)
        assert traced.total_goodput == plain.total_goodput
        assert traced.retransmit_segments == plain.retransmit_segments
        assert np.array_equal(traced.per_flow_goodput, plain.per_flow_goodput)
        assert len(sink.events) > 0

    def test_run_end_reports_result_shape(self):
        sink = ListSink(categories=["run"])
        with tracing(TraceBus(sinks=[sink])):
            res = quick_sim().run()
        end = [e for e in sink.events if e.name == "run.end"][-1]
        assert end.args["gbps"] == pytest.approx(res.total_gbps, abs=1e-5)

    def test_sanitizer_violation_includes_recent_events(self, monkeypatch):
        from repro.net.switch import SharedBufferQueue

        original = SharedBufferQueue.offer

        def lying_offer(self, arrival_bytes, dt):
            delivered, dropped = original(self, arrival_bytes, dt)
            return delivered + 1e9, dropped

        monkeypatch.setattr(SharedBufferQueue, "offer", lying_offer)
        sim = quick_sim()
        with tracing(TraceBus(sinks=[RingSink(capacity=32)])):
            with sanitizer.sanitized():
                with pytest.raises(SanitizerViolation) as excinfo:
                    sim.run()
        assert "flight recorder" in str(excinfo.value)


class TestHarnessTracks:
    def test_repetitions_get_scoped_tracks(self):
        from repro.tools.harness import HarnessConfig, TestHarness
        from repro.tools.iperf3 import Iperf3Options

        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        harness = TestHarness(snd, rcv, tb.path("lan"),
                              HarnessConfig(repetitions=2, duration=2.0,
                                            omit=0.5, tick=0.008))
        sink = ListSink(categories=["run"])
        with tracing(TraceBus(sinks=[sink])):
            harness.run(Iperf3Options(), label="lan-case")
        tracks = {e.track for e in sink.events}
        assert tracks == {"lan-case#r0", "lan-case#r1"}
