"""CPU specs and NUMA placement model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.host.cpu import CPUS, EPYC_73F3, XEON_6346
from repro.host.numa import CorePlacement, NumaTopology


class TestCpuSpec:
    def test_catalog(self):
        assert CPUS["intel"] is XEON_6346
        assert CPUS["amd"] is EPYC_73F3

    def test_paper_hosts_are_dual_socket_32_core(self):
        for spec in (XEON_6346, EPYC_73F3):
            assert spec.sockets == 2
            assert spec.total_cores == 32

    def test_clocks_match_paper(self):
        assert (XEON_6346.base_ghz, XEON_6346.max_ghz) == (3.1, 3.6)
        assert (EPYC_73F3.base_ghz, EPYC_73F3.max_ghz) == (3.5, 4.0)

    def test_avx512_only_on_intel(self):
        assert XEON_6346.avx512 and not EPYC_73F3.avx512

    def test_intel_copies_cheaper_despite_lower_clock(self):
        """The AVX-512 copy advantage behind the 55-vs-42 Gbps gap."""
        assert XEON_6346.copy_cyc_per_byte < EPYC_73F3.copy_cyc_per_byte

    def test_cycles_per_second(self):
        assert XEON_6346.cycles_per_second() == pytest.approx(3.6e9)
        assert XEON_6346.cycles_per_second(turbo=False) == pytest.approx(3.1e9)

    def test_with_overrides(self):
        faster = XEON_6346.with_overrides(max_ghz=4.2)
        assert faster.max_ghz == 4.2
        assert XEON_6346.max_ghz == 3.6  # original untouched

    def test_invalid_arch_rejected(self):
        with pytest.raises(ValueError):
            XEON_6346.with_overrides(arch="sparc")


class TestNumaTopology:
    def test_node_of_is_node_major(self):
        topo = NumaTopology(cpu=XEON_6346)
        assert topo.node_of(0) == 0
        assert topo.node_of(15) == 0
        assert topo.node_of(16) == 1
        assert topo.node_of(31) == 1

    def test_node_of_out_of_range(self):
        topo = NumaTopology(cpu=XEON_6346)
        with pytest.raises(ConfigurationError):
            topo.node_of(32)

    def test_cores_of_node(self):
        topo = NumaTopology(cpu=XEON_6346)
        assert topo.cores_of_node(0) == list(range(16))
        assert topo.cores_of_node(1) == list(range(16, 32))
        with pytest.raises(ConfigurationError):
            topo.cores_of_node(2)


class TestCorePlacement:
    def test_paper_pinned_layout(self):
        """set_irq_affinity_cpulist.sh 0-7; numactl -C 8-15."""
        topo = NumaTopology(cpu=XEON_6346)
        p = CorePlacement.paper_pinned(topo)
        assert p.irq_cores == tuple(range(8))
        assert p.app_cores == tuple(range(8, 16))
        assert not p.overlap

    def test_pinned_penalties_are_unity(self):
        topo = NumaTopology(cpu=XEON_6346)
        p = CorePlacement.paper_pinned(topo)
        assert p.irq_penalty(topo) == pytest.approx(1.0)
        assert p.app_penalty(topo) == pytest.approx(1.0)

    def test_irqbalanced_varies_and_penalizes(self):
        topo = NumaTopology(cpu=XEON_6346)
        rng = np.random.default_rng(0)
        penalties = [
            CorePlacement.irqbalanced(topo, rng).app_penalty(topo)
            for _ in range(50)
        ]
        assert max(penalties) > 1.0  # some placements land badly
        assert min(penalties) >= 1.0
        assert len(set(round(p, 6) for p in penalties)) > 3  # actually varies

    def test_remote_node_penalty(self):
        topo = NumaTopology(cpu=XEON_6346)
        wrong_node = CorePlacement(
            irq_cores=tuple(range(16, 24)), app_cores=tuple(range(24, 32))
        )
        assert wrong_node.irq_penalty(topo) == pytest.approx(topo.remote_memory_penalty)
        assert wrong_node.app_penalty(topo) == pytest.approx(topo.remote_memory_penalty)

    def test_shared_core_penalty_compounds(self):
        topo = NumaTopology(cpu=XEON_6346)
        shared = CorePlacement(irq_cores=(0,), app_cores=(0,))
        assert shared.app_penalty(topo) == pytest.approx(topo.shared_core_penalty)

    def test_empty_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            CorePlacement(irq_cores=(), app_cores=(1,))
        with pytest.raises(ConfigurationError):
            CorePlacement(irq_cores=(0,), app_cores=())
