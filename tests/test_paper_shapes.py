"""Paper-shape assertions: the qualitative claims of every artifact.

These are integration tests over the full simulator.  Each test states
one claim from the paper and asserts our reproduction preserves it —
with generous tolerances, because the substrate is a simulator, not the
authors' testbed.  Runs use short durations (see ``shape_config``);
the benchmarks regenerate the full tables.

Every test class declares which experiments' ``expectation`` strings it
asserts via :func:`tests._expectations.asserts_expectation`;
``tests/test_expectation_coverage.py`` enforces that the registry's
expectations are all asserted somewhere in this file.  Classes added
for that coverage consume the session's golden campaign
(``campaign_result``) instead of re-running the simulator.
"""

from __future__ import annotations

import pytest

from repro.core.rng import RngFactory
from repro.experiments.cc_zoo import (
    AGG_FLOWS,
    TUNER_BETAS,
    TUNER_CS,
    TUNER_PATH,
    _with_buffer,
)
from repro.experiments.quic_pacing import (
    AGG_CONNS,
    PACER_KINDS,
    QUIC_PATHS,
    SPIN_LOSS,
    SPIN_PATHS,
    SPIN_REORDER,
)
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_BEST_WAN, OPTMEM_DEFAULT
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import TestHarness
from repro.tools.iperf3 import Iperf3, Iperf3Options

from tests._expectations import asserts_expectation


def single(tb, path, opts, seed=11, duration=12.0):
    snd, rcv = tb.host_pair()
    tool = Iperf3(snd, rcv, tb.path(path), rng=RngFactory(seed), tick=0.004)
    o = Iperf3Options(
        duration=duration, omit=3.0, **{
            k: getattr(opts, k)
            for k in ("parallel", "fq_rate_gbps", "zerocopy", "skip_rx_copy",
                      "congestion")
        }
    )
    return tool.run(o)


@pytest.fixture(scope="module")
def amlight68():
    return AmLightTestbed(kernel="6.8")


@pytest.fixture(scope="module")
def esnet68():
    return ESnetTestbed(kernel="6.8")


@asserts_expectation("fig05")
class TestFig5Claims:
    """Single stream, AmLight Intel, kernel 6.8."""

    def test_lan_default_near_55(self, amlight68):
        res = single(amlight68, "lan", Iperf3Options())
        assert 46 < res.gbps < 58

    def test_zc_pace_hits_50_on_wan(self, amlight68):
        for path in ("wan25", "wan54"):
            res = single(amlight68, path, Iperf3Options(zerocopy="z", fq_rate_gbps=50))
            assert res.gbps == pytest.approx(50, rel=0.04), path

    def test_zc_pace_beats_default_by_25_to_50pct(self, amlight68):
        d = single(amlight68, "wan54", Iperf3Options())
        z = single(amlight68, "wan54", Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        assert 1.25 < z.gbps / d.gbps < 1.55  # paper: "up to 35%"

    def test_default_wan_rtt_flat(self, amlight68):
        """Default WAN throughput is sender-bound, nearly RTT-independent."""
        r25 = single(amlight68, "wan25", Iperf3Options()).gbps
        r104 = single(amlight68, "wan104", Iperf3Options()).gbps
        assert abs(r25 - r104) / r25 < 0.15

    def test_zerocopy_alone_not_the_win(self, amlight68):
        """Paper: 'MSG_ZEROCOPY by itself does not improve throughput,
        but combined with pacing provides up to 35%.'  Across the WAN
        paths, zc-unpaced is on average below the zc+pacing combo and
        visibly unstable (burst losses), while the combo is clean."""
        z_means, zp_means, z_retr, zp_retr = [], [], 0, 0
        for path in ("wan25", "wan54", "wan104"):
            z = single(amlight68, path, Iperf3Options(zerocopy="z"))
            zp = single(amlight68, path, Iperf3Options(zerocopy="z", fq_rate_gbps=50))
            z_means.append(z.gbps)
            zp_means.append(zp.gbps)
            z_retr += z.retransmits
            zp_retr += zp.retransmits
        assert sum(z_means) < sum(zp_means)
        assert z_retr > zp_retr  # unpaced zerocopy churns, the combo is clean
        # and at the longest path the unpaced flow is clearly worse
        assert z_means[2] < 0.75 * zp_means[2]

    def test_bigtcp_modest_gain(self):
        plain = AmLightTestbed(kernel="6.8")
        big = AmLightTestbed(kernel="6.8", big_tcp_size=153600)
        d = single(plain, "wan54", Iperf3Options()).gbps
        b = single(big, "wan54", Iperf3Options()).gbps
        assert 1.03 < b / d < 1.25  # paper: up to +16%


@asserts_expectation("fig06")
class TestFig6Claims:
    """Single stream, ESnet AMD."""

    def test_amd_lan_slower_than_intel(self, amlight68, esnet68):
        intel = single(amlight68, "lan", Iperf3Options()).gbps
        amd = single(esnet68, "lan", Iperf3Options()).gbps
        assert amd < intel * 0.9
        assert 36 < amd < 46  # paper: ~42

    def test_amd_wan_gap_and_zc_recovery(self, esnet68):
        lan = single(esnet68, "lan", Iperf3Options()).gbps
        wan = single(esnet68, "wan", Iperf3Options()).gbps
        zc = single(esnet68, "wan", Iperf3Options(zerocopy="z", fq_rate_gbps=40)).gbps
        assert wan < lan * 0.65  # "about 40% slower" (we allow 35-55%)
        assert zc == pytest.approx(40, rel=0.04)  # matches pacing = LAN level
        assert zc / wan > 1.5  # paper: +85%


@asserts_expectation("fig07", "fig08")
class TestFig7Fig8Claims:
    """CPU utilization patterns."""

    def test_intel_bottleneck_handoff(self):
        from repro.trace import ListSink, TraceBus, tracing

        tb = AmLightTestbed(kernel="6.5")
        # mpstat-style probes recorded alongside, like the paper's runs
        sink = ListSink(categories=["probe"])
        with tracing(TraceBus(sinks=[sink])) as bus:
            with bus.scoped("lan"):
                lan_d = single(tb, "lan", Iperf3Options())
            with bus.scoped("wan"):
                wan_d = single(tb, "wan54", Iperf3Options())
        # default: receiver busy on LAN, sender saturated on WAN
        assert lan_d.run.receiver_cpu.total_pct > 90
        assert wan_d.run.sender_cpu.app_pct > 95
        # ...and the per-sample mpstat series says the same thing
        # throughout steady state, not just on average: the bottleneck
        # core is pinned in (nearly) every sample after the omit window.
        def steady_mpstat(track):
            return [e.args for e in sink.events
                    if e.name == "probe.mpstat" and e.track == track
                    and e.t > 3.0]

        lan_samples, wan_samples = steady_mpstat("lan"), steady_mpstat("wan")
        assert len(lan_samples) > 20 and len(wan_samples) > 20
        assert min(s["rcv_total_pct"] for s in lan_samples) > 85
        assert min(s["snd_app_pct"] for s in wan_samples) > 90
        # zerocopy+pacing: sender CPU collapses
        wan_z = single(tb, "wan25", Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        assert wan_z.run.sender_cpu.total_pct < 0.7 * wan_d.run.sender_cpu.total_pct

    def test_amd_wan_sender_cpu_higher_than_intel(self):
        intel = single(AmLightTestbed(kernel="6.5"), "wan54", Iperf3Options())
        amd = single(ESnetTestbed(kernel="6.5"), "wan", Iperf3Options())
        # per gigabit shipped, the AMD sender burns more CPU
        intel_eff = intel.run.sender_cpu.total_pct / intel.gbps
        amd_eff = amd.run.sender_cpu.total_pct / amd.gbps
        assert amd_eff > 1.3 * intel_eff


@asserts_expectation("fig09")
class TestFig9Claims:
    """optmem_max sweep (kernel 6.5)."""

    def mk(self, optmem):
        return AmLightTestbed(kernel="6.5", optmem_max=optmem)

    def test_default_optmem_cripples_wan(self):
        res = single(self.mk(OPTMEM_DEFAULT), "wan54",
                     Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        assert res.gbps < 30
        assert res.run.sender_cpu.app_pct > 95

    def test_1mb_fine_short_wan_weak_104ms(self):
        ok = single(self.mk(OPTMEM_1MB), "wan25",
                    Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        weak = single(self.mk(OPTMEM_1MB), "wan104",
                      Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        assert ok.gbps > 43
        assert weak.gbps == pytest.approx(35, rel=0.25)  # paper: ~40

    def test_best_value_restores_104ms(self):
        res = single(self.mk(OPTMEM_BEST_WAN), "wan104",
                     Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        assert res.gbps > 43
        # and the CPU drops vs the 1MB case
        weak = single(self.mk(OPTMEM_1MB), "wan104",
                      Iperf3Options(zerocopy="z", fq_rate_gbps=50))
        assert res.run.sender_cpu.total_pct < weak.run.sender_cpu.total_pct


@asserts_expectation("fig12", "fig13")
class TestKernelClaims:
    """Figures 12/13."""

    def test_amd_kernel_ladder(self):
        gbps = {}
        for k in ("5.15", "6.5", "6.8"):
            gbps[k] = single(ESnetTestbed(kernel=k), "lan", Iperf3Options()).gbps
        assert gbps["6.5"] / gbps["5.15"] == pytest.approx(1.12, abs=0.05)
        assert gbps["6.8"] / gbps["6.5"] == pytest.approx(1.17, abs=0.05)

    def test_intel_lan_ladder(self):
        g515 = single(AmLightTestbed(kernel="5.15"), "lan", Iperf3Options()).gbps
        g68 = single(AmLightTestbed(kernel="6.8"), "lan", Iperf3Options()).gbps
        assert g68 / g515 == pytest.approx(1.28, abs=0.07)

    def test_intel_wan_flat_at_pacing_cap(self):
        """Tuned WAN flows pin at the 50G pacing cap on every kernel."""
        opts = Iperf3Options(zerocopy="z", fq_rate_gbps=50, skip_rx_copy=True)
        values = [
            single(AmLightTestbed(kernel=k, optmem_max=OPTMEM_BEST_WAN), "wan54", opts).gbps
            for k in ("5.15", "6.5", "6.8")
        ]
        assert max(values) - min(values) < 1.5
        assert values[0] == pytest.approx(50, rel=0.04)


@asserts_expectation("tab1", "tab2", "tab3")
class TestTableClaims:
    def test_table1_lan_shape(self, esnet68):
        tb = ESnetTestbed(kernel="5.15")
        unpaced = single(tb, "lan", Iperf3Options(parallel=8), duration=12)
        paced15 = single(tb, "lan", Iperf3Options(parallel=8, fq_rate_gbps=15), duration=12)
        assert unpaced.gbps == pytest.approx(166, rel=0.08)
        assert paced15.gbps == pytest.approx(120, rel=0.03)

    def test_table2_wan_ceiling(self):
        tb = ESnetTestbed(kernel="5.15")
        unpaced = single(tb, "wan", Iperf3Options(parallel=8), duration=14)
        paced15 = single(tb, "wan", Iperf3Options(parallel=8, fq_rate_gbps=15), duration=14)
        assert 105 < unpaced.gbps < 135  # paper: 127, interference ceiling
        assert paced15.gbps == pytest.approx(120, rel=0.04)
        assert unpaced.retransmits > paced15.retransmits

    def test_table3_flow_control(self):
        from repro.trace import ListSink, TraceBus, tracing

        tb = ESnetTestbed()
        snd, rcv = tb.production_host_pair()
        tool = Iperf3(snd, rcv, tb.production_path(), rng=RngFactory(4), tick=0.004)
        # Trace both runs (passively — tracing changes no number; the
        # run order must stay unpaced-then-paced for seed continuity).
        sink = ListSink()
        with tracing(TraceBus(sinks=[sink])) as bus:
            with bus.scoped("unpaced"):
                unpaced = tool.run(Iperf3Options(duration=12, omit=3, parallel=8))
            with bus.scoped("paced"):
                paced10 = tool.run(Iperf3Options(duration=12, omit=3, parallel=8, fq_rate_gbps=10))
        assert unpaced.gbps == pytest.approx(97, rel=0.08)  # paper: 98
        assert paced10.gbps == pytest.approx(80, rel=0.03)  # paper: 79
        lo_u, hi_u = unpaced.run.flow_range_gbps
        lo_p, hi_p = paced10.run.flow_range_gbps
        assert hi_u - lo_u > 2.0  # unpaced spread (paper: 9-16)
        assert hi_p - lo_p < 0.5  # paced: all exactly 10
        # Mechanism, per the trace: the residual unpaced retransmits are
        # *backbone* drop episodes (background bursts on the shared
        # switch buffer) — the 802.3x-protected receiver ring never
        # loses a byte — and 10 Gbps/stream pacing removes the episodes
        # entirely, which is exactly Table III's 29K -> 1K story.
        def drops(track):
            return [e for e in sink.events
                    if e.name == "switch.drop_start" and e.track == track]

        assert len(drops("unpaced")) >= 1
        assert all(e.args["port"] != "rx-ring" for e in drops("unpaced"))
        assert drops("paced") == []
        nic_u = [e.args for e in sink.events
                 if e.name == "probe.nic" and e.track == "unpaced"]
        nic_p = [e.args for e in sink.events
                 if e.name == "probe.nic" and e.track == "paced"]
        assert nic_u and nic_p
        assert all(s["ring_dropped"] == 0.0 for s in nic_u + nic_p)
        assert nic_u[-1]["switch_dropped"] > 0.0
        assert nic_p[-1]["switch_dropped"] == 0.0


@asserts_expectation("fw-hwgro")
class TestFutureWorkClaims:
    @staticmethod
    def _intel_cx7(kernel, mtu):
        """The paper's HW-GRO preview host: Intel with a ConnectX-7."""
        from repro.testbeds.profiles import paper_host

        snd = paper_host("snd", cpu="intel", nic="cx7", kernel=kernel, mtu=mtu)
        rcv = paper_host("rcv", cpu="intel", nic="cx7", kernel=kernel, mtu=mtu)
        tool = Iperf3(snd, rcv, ESnetTestbed(kernel=kernel).path("lan"),
                      rng=RngFactory(11), tick=0.004)
        return tool.run(Iperf3Options(duration=12, omit=3)).gbps

    def test_hw_gro_1500_mtu_dramatic(self):
        soft = self._intel_cx7("6.8", 1500)
        hard = self._intel_cx7("6.11", 1500)
        assert soft == pytest.approx(24, rel=0.2)  # paper: 24 Gbps
        assert hard / soft > 1.8  # paper: +160% (24 -> 62)

    def test_hw_gro_9k_modest(self):
        soft = self._intel_cx7("6.8", 9000)
        hard = self._intel_cx7("6.11", 9000)
        assert 1.0 <= hard / soft < 1.4


@asserts_expectation("var")
class TestAffinityClaims:
    def test_irqbalance_variability(self):
        from repro.tools.harness import HarnessConfig

        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        cfg = HarnessConfig(repetitions=8, duration=6.0, omit=1.5, tick=0.004)
        pinned = TestHarness(snd, rcv, tb.path("lan"), cfg).run(Iperf3Options())
        snd_b = snd.set(tuning=snd.tuning.set(irqbalance=True))
        rcv_b = rcv.set(tuning=rcv.tuning.set(irqbalance=True))
        balanced = TestHarness(snd_b, rcv_b, tb.path("lan"), cfg).run(Iperf3Options())
        assert balanced.stdev_gbps > 3 * max(pinned.stdev_gbps, 0.1)
        assert balanced.min_gbps < 0.75 * pinned.min_gbps


# ---------------------------------------------------------------------------
# Campaign-backed coverage: the remaining registered expectations.
#
# These classes assert the paper claims of every experiment not already
# covered above.  They read rows out of the session's golden campaign
# (``campaign_result``) — one jobs=4 runner invocation feeds them all,
# so asserting twelve more experiments costs zero extra simulator time.
# ---------------------------------------------------------------------------


def rows_by(result, **match):
    """Rows of an ExperimentResult matching all given column values."""
    picked = [
        row for row in result.rows
        if all(row[k] == v for k, v in match.items())
    ]
    assert picked, f"no row matches {match} in {result.exp_id}"
    return picked


def one_row(result, **match):
    picked = rows_by(result, **match)
    assert len(picked) == 1, f"{match} ambiguous in {result.exp_id}"
    return picked[0]


@asserts_expectation("fig04")
class TestFig4Claims:
    """Tuned VMs match bare metal; untuned VMs trail badly."""

    def test_tuned_vm_matches_baremetal(self, campaign_result):
        res = campaign_result("fig04")
        for row in rows_by(res, vm_mode="tuned"):
            bare = one_row(res, vm_mode="baremetal",
                           path=row["path"], test=row["test"])
            assert row["gbps"] == pytest.approx(bare["gbps"], rel=0.05), (
                row["path"], row["test"])

    def test_untuned_vm_clearly_slower(self, campaign_result):
        res = campaign_result("fig04")
        for row in rows_by(res, vm_mode="untuned"):
            bare = one_row(res, vm_mode="baremetal",
                           path=row["path"], test=row["test"])
            assert row["gbps"] < 0.80 * bare["gbps"], (
                row["path"], row["test"])

    def test_untuned_noisier_than_tuned(self, campaign_result):
        res = campaign_result("fig04")
        untuned = rows_by(res, vm_mode="untuned")
        tuned = rows_by(res, vm_mode="tuned")
        assert min(r["stdev"] for r in untuned) > max(r["stdev"] for r in tuned)


@asserts_expectation("fig10")
class TestFig10Claims:
    """Paced parallel streams land exactly on the aggregate pacing cap."""

    def test_paced_aggregates_pin_to_cap(self, campaign_result):
        res = campaign_result("fig10")
        for row in res.rows:
            assert row["gbps"] == pytest.approx(row["max_tput"], rel=0.01)
            assert row["retr"] == 0

    def test_paced_runs_are_steady_on_both_paths(self, campaign_result):
        res = campaign_result("fig10")
        assert all(row["stdev"] < 0.1 for row in res.rows)
        # LAN and WAN land on the same ceiling for every pacing level
        for row in rows_by(res, path="wan"):
            lan = one_row(res, path="lan", pacing=row["pacing"])
            assert row["gbps"] == pytest.approx(lan["gbps"], rel=0.01)


@asserts_expectation("fig11")
class TestFig11Claims:
    """8-stream WAN: unpaced zerocopy is fast-but-wild, 9G pacing is clean."""

    def test_default_decays_with_rtt(self, campaign_result):
        res = campaign_result("fig11")
        gbps = [one_row(res, path=p, config="default")["gbps"]
                for p in ("lan", "wan25", "wan54", "wan104")]
        assert gbps == sorted(gbps, reverse=True)

    def test_unpaced_zerocopy_unstable_on_wan(self, campaign_result):
        res = campaign_result("fig11")
        zc_retr = paced_retr = 0
        for path in ("wan25", "wan54", "wan104"):
            zc = one_row(res, path=path, config="zc-unpaced")
            paced = one_row(res, path=path, config="zc+9G")
            assert zc["stdev"] > 10 * max(paced["stdev"], 0.05), path
            zc_retr += zc["retr"]
            paced_retr += paced["retr"]
        # per-path retransmits vary; across the WAN the unpaced flows churn
        assert zc_retr > 1.5 * paced_retr

    def test_9g_pacing_is_rtt_independent(self, campaign_result):
        res = campaign_result("fig11")
        gbps = {p: one_row(res, path=p, config="zc+9G")["gbps"]
                for p in ("wan25", "wan54", "wan104")}
        assert max(gbps.values()) - min(gbps.values()) < 0.5
        assert all(v == pytest.approx(72, rel=0.02) for v in gbps.values())


@asserts_expectation("cc")
class TestCongestionControlClaims:
    """CUBIC vs BBRv1/v3: similar single-flow rates, wildly different loss."""

    def test_single_flow_rates_within_ten_percent(self, campaign_result):
        res = campaign_result("cc")
        singles = [r["gbps"] for r in rows_by(res, scenario="single-wan54")]
        assert max(singles) / min(singles) < 1.10
        assert all(r["retr"] == 0
                   for r in rows_by(res, scenario="single-wan54"))

    def test_bbr_retransmit_explosion_unpaced(self, campaign_result):
        res = campaign_result("cc")
        cubic = one_row(res, algo="cubic", scenario="8flows-unpaced")
        for algo in ("bbr1", "bbr3"):
            bbr = one_row(res, algo=algo, scenario="8flows-unpaced")
            assert bbr["retr"] > 100 * cubic["retr"], algo

    def test_pacing_tames_every_algorithm(self, campaign_result):
        res = campaign_result("cc")
        for algo in ("cubic", "bbr1", "bbr3"):
            unpaced = one_row(res, algo=algo, scenario="8flows-unpaced")
            paced = one_row(res, algo=algo, scenario="8flows-9G")
            assert paced["retr"] < 0.01 * max(unpaced["retr"], 20000) + 200
            assert paced["stdev"] < 0.1, algo


@asserts_expectation("fw-combo")
class TestFutureWorkComboClaims:
    """BIG TCP + zerocopy needs MAX_SKB_FRAGS=45; then pacing can go 65G."""

    def test_stock_kernel_refuses_the_combo(self, campaign_result):
        row = one_row(campaign_result("fw-combo"), kernel="6.8 stock")
        assert row["gbps"] == 0.0
        assert "MAX_SKB_FRAGS" in row["note"]

    def test_rebuilt_kernel_unlocks_65g(self, campaign_result):
        res = campaign_result("fw-combo")
        zc = one_row(res, config="zc+pace50")
        combo = one_row(res, config="bigtcp+zc+pace65")
        assert zc["gbps"] == pytest.approx(50, rel=0.02)
        assert combo["gbps"] == pytest.approx(65, rel=0.02)
        assert combo["gbps"] / zc["gbps"] > 1.25


@asserts_expectation("pit-fqrate")
class TestFqRatePitfallClaims:
    """iperf3's uint fq-rate truncates 50G; the PR1728 fix paces correctly."""

    def test_fixed_tool_hits_requested_rate(self, campaign_result):
        row = one_row(campaign_result("pit-fqrate"), tool="iperf3+PR1728")
        assert row["gbps"] == pytest.approx(50, rel=0.02)

    def test_truncating_tool_crawls(self, campaign_result):
        res = campaign_result("pit-fqrate")
        fixed = one_row(res, tool="iperf3+PR1728")
        broken = one_row(res, tool="iperf3 (uint fq-rate)")
        assert broken["gbps"] < 0.5 * fixed["gbps"]
        # Paper shape: 50 Gbps requested, 6.25e9 % 2^32 B/s ≈ 15.6 Gbps
        # delivered — the wrapped pacing rate, not some other collapse.
        assert broken["gbps"] == pytest.approx(15.6, abs=0.8)


@asserts_expectation("pit-iommu")
class TestIommuPitfallClaims:
    """iommu=pt roughly doubles aggregate throughput vs translated DMA."""

    def test_passthrough_doubles_throughput(self, campaign_result):
        res = campaign_result("pit-iommu")
        pt = one_row(res, iommu="pt")
        translated = one_row(res, iommu="translated")
        assert pt["gbps"] > 1.8 * translated["gbps"]
        assert pt["gbps"] > 140  # paper: near-line-rate with passthrough


@asserts_expectation("ext-400g")
class TestExtrapolation400GClaims:
    """Projected 400G matrices: paced 8x25 is clean, 400G asks fall short."""

    def test_paced_200g_matrix_delivers_fully(self, campaign_result):
        row = one_row(campaign_result("ext-400g"), matrix="8 x 25G")
        assert row["gbps"] == pytest.approx(row["attempted"], rel=0.01)
        assert row["retr"] == 0

    def test_400g_attempts_leave_headroom_on_table(self, campaign_result):
        res = campaign_result("ext-400g")
        for matrix in ("20 x 20G", "10 x 40G"):
            row = one_row(res, matrix=matrix)
            assert row["attempted"] == 400.0
            assert 0.90 * row["attempted"] < row["gbps"] < row["attempted"]

    def test_stream_mix_does_not_matter_at_saturation(self, campaign_result):
        res = campaign_result("ext-400g")
        a = one_row(res, matrix="20 x 20G")["gbps"]
        b = one_row(res, matrix="10 x 40G")["gbps"]
        assert a == pytest.approx(b, rel=0.01)


@asserts_expectation("ext-optmem")
class TestOptmemRecommenderClaims:
    """The optmem_max recommender matches an oracle sweep on every path."""

    def test_recommendation_matches_oracle(self, campaign_result):
        res = campaign_result("ext-optmem")
        for row in res.rows:
            assert row["gbps"] == pytest.approx(row["oracle_gbps"], rel=0.01), (
                row["path"])
            assert row["gbps"] == pytest.approx(50, rel=0.02), row["path"]

    def test_recommended_bytes_grow_with_rtt(self, campaign_result):
        res = campaign_result("ext-optmem")
        rec = [one_row(res, path=p)["recommended_bytes"]
               for p in ("lan", "wan25", "wan54", "wan104")]
        assert rec == sorted(rec)
        assert rec[-1] > rec[0]  # 104ms needs more than the LAN floor


@asserts_expectation("abl-cache")
class TestCachePenaltyAblationClaims:
    """Removing the cache-penalty term erases the LAN/WAN copy-cost gap."""

    def test_calibrated_model_shows_wan_gap(self, campaign_result):
        res = campaign_result("abl-cache")
        lan = one_row(res, model="calibrated", path="lan")
        wan = one_row(res, model="calibrated", path="wan54")
        assert wan["gbps"] < 0.8 * lan["gbps"]

    def test_ablated_model_is_path_blind(self, campaign_result):
        res = campaign_result("abl-cache")
        lan = one_row(res, model="no-cache-penalty", path="lan")
        wan = one_row(res, model="no-cache-penalty", path="wan54")
        assert wan["gbps"] == pytest.approx(lan["gbps"], rel=0.01)


@asserts_expectation("abl-burst")
class TestBurstBufferAblationClaims:
    """Finite switch buffers cause the burst losses; infinite buffers don't."""

    def test_finite_buffer_drops_and_slows(self, campaign_result):
        res = campaign_result("abl-burst")
        finite = one_row(res, buffer="tofino-16MB")
        infinite = one_row(res, buffer="infinite")
        assert finite["retr"] > 50
        assert infinite["retr"] == 0
        assert finite["gbps"] < 0.8 * infinite["gbps"]


@asserts_expectation("fig11-heavy")
class TestFig11HeavyTailClaims:
    """Pareto background at the same mean: elephants break WAN pacing."""

    def test_lan_unaffected_by_tail_swap(self, campaign_result):
        """No background on the LAN path, so swapping its *model* is a
        no-op: lan rows track fig11's within run-label noise."""
        heavy = campaign_result("fig11-heavy")
        base = campaign_result("fig11")
        for config in ("default", "zc-unpaced", "zc+9G"):
            h = one_row(heavy, path="lan", config=config)
            b = one_row(base, path="lan", config=config)
            assert h["gbps"] == pytest.approx(b["gbps"], rel=0.05), config
            assert h["retr"] == 0

    def test_paced_still_beats_unpaced_on_wan(self, campaign_result):
        res = campaign_result("fig11-heavy")
        for path in ("wan25", "wan54", "wan104"):
            unpaced = one_row(res, path=path, config="zc-unpaced")
            paced = one_row(res, path=path, config="zc+9G")
            assert paced["gbps"] > unpaced["gbps"] + 10, path

    def test_unpaced_zerocopy_misses_max_on_wan(self, campaign_result):
        res = campaign_result("fig11-heavy")
        for path in ("wan25", "wan54", "wan104"):
            row = one_row(res, path=path, config="zc-unpaced")
            assert row["gbps"] < 45, path  # 8 x 9G pacing reaches ~72
            assert row["retr"] > 1000, path

    def test_elephant_bursts_break_pacing_cleanliness(self, campaign_result):
        """Under the lognormal model, 9G pacing pins ~72 Gbps with tiny
        stdev on every WAN path (fig11).  Infinite-variance bursts at
        the *same mean* drag the paced aggregate below that and make it
        visibly noisy — pacing cannot absorb elephants."""
        heavy = campaign_result("fig11-heavy")
        base = campaign_result("fig11")
        for path in ("wan25", "wan54", "wan104"):
            h = one_row(heavy, path=path, config="zc+9G")
            b = one_row(base, path=path, config="zc+9G")
            assert h["gbps"] < 0.9 * b["gbps"], path
            assert h["stdev"] > 1.0, path


@asserts_expectation("scale-flows")
class TestFlowCountScalingClaims:
    """Sharded campaigns: fairness and retransmit cadence vs N."""

    PATHS = ("lan", "wan25", "wan54", "wan104")
    COUNTS = (16, 1000, 10000, 100000)

    def test_fairness_near_one_at_every_scale(self, campaign_result):
        res = campaign_result("scale-flows")
        for row in res.rows:
            assert 0.85 < row["fairness"] <= 1.0, (
                row["path"], row["n_flows"])

    def test_retransmit_rate_climbs_with_flow_count(self, campaign_result):
        res = campaign_result("scale-flows")
        for path in self.PATHS:
            rates = [one_row(res, path=path, n_flows=n)["retr_rate"]
                     for n in self.COUNTS]
            assert all(a < b for a, b in zip(rates, rates[1:])), (
                path, rates)

    def test_long_rtt_slows_the_retransmit_cadence(self, campaign_result):
        """At high N each flow's share is tiny and every cwnd hovers at
        the loss floor; the overshoot-recovery cycle then runs at a
        rate set by the RTT, so longer paths retransmit *less* per
        second."""
        res = campaign_result("scale-flows")
        for n in (10000, 100000):
            rates = [one_row(res, path=p, n_flows=n)["retr_rate"]
                     for p in self.PATHS]
            assert all(a > b for a, b in zip(rates, rates[1:])), (
                n, rates)

    def test_aggregate_throughput_stays_in_band(self, campaign_result):
        """Fair sharing, not collapse: the aggregate holds the paths'
        usual 45-65 Gbps operating band at every flow count."""
        res = campaign_result("scale-flows")
        for row in res.rows:
            assert 40 < row["gbps"] < 70, (row["path"], row["n_flows"])


@asserts_expectation("abl-fallback")
class TestFallbackAblationClaims:
    """1MB optmem_max throttles long-RTT zerocopy via copy fallback."""

    def test_fallback_only_bites_long_rtt(self, campaign_result):
        res = campaign_result("abl-fallback")
        short = one_row(res, optmem="1MB", path="wan25")
        long = one_row(res, optmem="1MB", path="wan104")
        assert short["gbps"] == pytest.approx(50, rel=0.02)
        assert long["gbps"] < 0.8 * short["gbps"]

    def test_unlimited_optmem_restores_rate_and_cpu(self, campaign_result):
        res = campaign_result("abl-fallback")
        limited = one_row(res, optmem="1MB", path="wan104")
        unlimited = one_row(res, optmem="unlimited", path="wan104")
        assert unlimited["gbps"] == pytest.approx(50, rel=0.02)
        # the copy fallback also burns sender CPU; lifting it cools the host
        assert unlimited["snd_cpu_pct"] < 0.8 * limited["snd_cpu_pct"]


@asserts_expectation("cc-zoo")
class TestCcZooClaims:
    """Zoo cross product: who wins where beyond CUBIC/BBR."""

    WAN = ("wan25", "wan54", "wan104")
    HIGH_BDP = ("scalable", "highspeed", "htcp")

    def test_high_bdp_responses_beat_reno_on_every_unpaced_wan_cell(
        self, campaign_result
    ):
        res = campaign_result("cc-zoo")
        for path in self.WAN:
            for buffer in ("deep", "shallow"):
                reno = one_row(
                    res, cc="reno", path=path, buffer=buffer, pacing="unpaced"
                )
                for cc in self.HIGH_BDP:
                    row = one_row(
                        res, cc=cc, path=path, buffer=buffer, pacing="unpaced"
                    )
                    assert row["gbps"] > reno["gbps"], (cc, path, buffer)

    def test_scalable_tops_every_unpaced_wan_cell(self, campaign_result):
        res = campaign_result("cc-zoo")
        for path in self.WAN:
            for buffer in ("deep", "shallow"):
                rows = rows_by(res, path=path, buffer=buffer, pacing="unpaced")
                best = max(rows, key=lambda r: r["gbps"])
                assert best["cc"] == "scalable", (path, buffer, best)

    def test_lan_cells_are_cc_agnostic(self, campaign_result):
        """No loss on the LAN, so the zoo collapses to one number per
        (buffer, pacing) cell — the winner column there says nothing."""
        res = campaign_result("cc-zoo")
        for buffer in ("deep", "shallow"):
            for pacing in ("unpaced", "paced"):
                rows = rows_by(res, path="lan", buffer=buffer, pacing=pacing)
                assert len({r["gbps"] for r in rows}) == 1, (buffer, pacing)

    def test_westwood_most_conservative_where_loss_bites(self, campaign_result):
        """Fewest retransmits in every shallow-buffer cell, and strictly
        the fewest in the 256-flow aggregate."""
        res = campaign_result("cc-zoo")
        for path in self.WAN:
            for pacing in ("unpaced", "paced"):
                rows = rows_by(res, path=path, buffer="shallow", pacing=pacing)
                ww = one_row(
                    res, cc="westwood", path=path, buffer="shallow", pacing=pacing
                )
                assert ww["retr"] == min(r["retr"] for r in rows), (path, pacing)
        agg = rows_by(res, pacing=f"agg{AGG_FLOWS}")
        ww = one_row(res, cc="westwood", pacing=f"agg{AGG_FLOWS}")
        others = [r["retr"] for r in agg if r["cc"] != "westwood"]
        assert ww["retr"] < min(others)

    def test_pacing_recovers_westwoods_throughput(self, campaign_result):
        """Unpaced, westwood's conservative bandwidth estimate starves it
        on the WAN; fq pacing brings it back within 20% of the winner."""
        res = campaign_result("cc-zoo")
        for path in self.WAN:
            un = one_row(
                res, cc="westwood", path=path, buffer="deep", pacing="unpaced"
            )
            pa = one_row(
                res, cc="westwood", path=path, buffer="deep", pacing="paced"
            )
            assert pa["gbps"] > 3 * un["gbps"], path
            best = max(
                r["gbps"]
                for r in rows_by(res, path=path, buffer="deep", pacing="paced")
            )
            assert pa["gbps"] > 0.8 * best, path

    def test_pacing_narrows_the_deep_buffer_spread(self, campaign_result):
        res = campaign_result("cc-zoo")
        for path in self.WAN:
            spread = {}
            for pacing in ("unpaced", "paced"):
                g = [
                    r["gbps"]
                    for r in rows_by(res, path=path, buffer="deep", pacing=pacing)
                ]
                spread[pacing] = max(g) - min(g)
            assert spread["paced"] < 0.35 * spread["unpaced"], (path, spread)

    def test_who_wins_heatmap_renders(self, campaign_result):
        res = campaign_result("cc-zoo")
        assert "Who wins where" in res.appendix
        for path in ("lan",) + self.WAN:
            assert f"| {path} |" in res.appendix
        assert f"{AGG_FLOWS}-flow aggregate" in res.appendix
        # the appendix travels through render() and the markdown report
        assert res.appendix in res.render()


@asserts_expectation("cc-tuner")
class TestCcTunerClaims:
    """TCPTuner c x beta grid on the lossy wan104/shallow cell."""

    def test_beta_trades_retransmits_for_throughput_at_every_c(
        self, campaign_result
    ):
        res = campaign_result("cc-tuner")
        for c in TUNER_CS:
            g = [one_row(res, c=c, beta=b)["gbps"] for b in TUNER_BETAS]
            assert all(a < b for a, b in zip(g, g[1:])), (c, g)
            # the last beta step is the steep one, retransmit-wise
            r_stock = one_row(res, c=c, beta=0.7)["retr"]
            r_gentle = one_row(res, c=c, beta=0.9)["retr"]
            assert r_gentle > 4 * r_stock, (c, r_stock, r_gentle)

    def test_c_lifts_throughput_with_stock_or_gentler_backoff(
        self, campaign_result
    ):
        res = campaign_result("cc-tuner")
        for beta in (0.7, 0.9):
            g = [one_row(res, c=c, beta=beta)["gbps"] for c in TUNER_CS]
            assert all(a < b for a, b in zip(g, g[1:])), (beta, g)

    def test_raising_c_repairs_the_deep_backoff_ramp(self, campaign_result):
        """At beta=0.3 a timid cubic is still climbing when the run ends
        (first interval well below the last); c=1.6 converges within the
        first post-omit interval."""
        res = campaign_result("cc-tuner")
        assert one_row(res, c=0.2, beta=0.3)["ramp"] < 0.9
        assert one_row(res, c=1.6, beta=0.3)["ramp"] >= 1.0

    def test_stock_cubic_is_not_the_top_of_the_grid(self, campaign_result):
        res = campaign_result("cc-tuner")
        stock = one_row(res, c=0.4, beta=0.7)["gbps"]
        assert max(r["gbps"] for r in res.rows) > 1.15 * stock

    def test_alpha_knob_is_inert_at_these_bdps(self, amlight68):
        """CUBIC sits in its cubic region on the sweep's cell; the
        TCP-friendly slope never binds, so alpha cannot move the grid."""
        from repro.tools.harness import HarnessConfig, TestHarness

        snd, rcv = amlight68.host_pair()
        path = _with_buffer(amlight68.path(TUNER_PATH), "shallow")
        harness = TestHarness(snd, rcv, path, HarnessConfig.quick())
        runs = [
            harness.run(
                Iperf3Options(
                    congestion=f"tunable-cubic:alpha={alpha},beta=0.7",
                    parallel=4,
                ),
                label=f"alpha-inert/{alpha}",
            )
            for alpha in (0.25, 4.0)
        ]
        # A 16x alpha change moves throughput by under a part per
        # million — the knob binds only for an instant after each loss.
        assert runs[0].mean_gbps == pytest.approx(runs[1].mean_gbps, rel=1e-6)
        assert runs[0].mean_retransmits == runs[1].mean_retransmits


@asserts_expectation("quic-pacing")
class TestQuicPacingClaims:
    """Userspace pacers on the TCP loss model: burstiness is destiny."""

    RATED = ("interval", "token-bucket", "chunked")

    def test_shallow_cells_order_exactly_by_release_slack(
        self, campaign_result
    ):
        """interval > token-bucket > chunked > none at every RTT —
        PACER_KINDS is already in ascending-slack order."""
        res = campaign_result("quic-pacing")
        for path in QUIC_PATHS:
            g = [
                one_row(res, pacer=k, path=path, buffer="shallow")["gbps"]
                for k in PACER_KINDS
            ]
            assert all(a > b for a, b in zip(g, g[1:])), (path, g)

    def test_unpaced_collapse_deepens_with_rtt(self, campaign_result):
        """The unpaced stack's fraction of interval's throughput falls
        monotonically from wan25 to wan104 in the shallow cells."""
        res = campaign_result("quic-pacing")
        frac = []
        for path in QUIC_PATHS:
            none = one_row(res, pacer="none", path=path, buffer="shallow")
            interval = one_row(
                res, pacer="interval", path=path, buffer="shallow"
            )
            frac.append(none["gbps"] / interval["gbps"])
        assert all(a > b for a, b in zip(frac, frac[1:])), frac
        assert frac[-1] < 0.15, frac

    def test_interval_alone_is_retransmit_free_on_deep_buffers(
        self, campaign_result
    ):
        res = campaign_result("quic-pacing")
        for path in QUIC_PATHS:
            row = one_row(res, pacer="interval", path=path, buffer="deep")
            assert row["retr"] == 0, path
        for kind in PACER_KINDS[1:]:
            total = sum(
                one_row(res, pacer=kind, path=p, buffer="deep")["retr"]
                for p in QUIC_PATHS
            )
            assert total > 0, kind

    def test_interval_pays_a_tail_drop_trickle_where_it_saturates(
        self, campaign_result
    ):
        """In every shallow cell interval keeps the queue full (top
        throughput) and pays for it in steady drops; the bursty pacers
        barely retransmit because they barely transmit."""
        res = campaign_result("quic-pacing")
        for path in QUIC_PATHS:
            rows = {
                k: one_row(res, pacer=k, path=path, buffer="shallow")
                for k in PACER_KINDS
            }
            assert rows["interval"]["retr"] >= 100, path
            for kind in PACER_KINDS[1:]:
                assert rows[kind]["retr"] <= 5, (path, kind)
                assert rows[kind]["gbps"] < rows["interval"]["gbps"], (
                    path,
                    kind,
                )

    def test_deep_buffers_hold_rated_pacers_within_ten_percent(
        self, campaign_result
    ):
        res = campaign_result("quic-pacing")
        for path in QUIC_PATHS:
            g = [
                one_row(res, pacer=k, path=path, buffer="deep")["gbps"]
                for k in self.RATED
            ]
            assert min(g) >= 0.9 * max(g), (path, g)

    def test_aggregate_converges_near_line_rate_unpaced_last(
        self, campaign_result
    ):
        res = campaign_result("quic-pacing")
        agg = {
            k: one_row(res, pacer=k, buffer=f"agg{AGG_CONNS}")["gbps"]
            for k in PACER_KINDS
        }
        assert min(agg.values()) > 0.98 * max(agg.values()), agg
        assert min(agg, key=agg.get) == "none", agg

    def test_appendix_renders_the_burstiness_ladder(self, campaign_result):
        res = campaign_result("quic-pacing")
        assert "Burstiness ladder" in res.appendix
        for kind in PACER_KINDS:
            assert f"| {kind} |" in res.appendix


@asserts_expectation("spin-accuracy")
class TestSpinAccuracyClaims:
    """The passive estimator is trustworthy on a clean tap and degrades
    predictably along each impairment axis."""

    def test_median_error_under_ten_percent_at_zero_impairment(
        self, campaign_result
    ):
        """The acceptance bar is 10%; the clean-channel estimator is in
        practice under 3% median and 5% p90 on both long paths."""
        res = campaign_result("spin-accuracy")
        for path in SPIN_PATHS:
            row = one_row(res, path=path, loss=0.0, reorder=0.0)
            assert row["median_err_pct"] < 10.0, (path, row)
            assert row["median_err_pct"] < 3.0, (path, row)
            assert row["p90_err_pct"] < 5.0, (path, row)

    def test_median_degrades_monotonically_along_both_axes(
        self, campaign_result
    ):
        res = campaign_result("spin-accuracy")
        for path in SPIN_PATHS:
            for reorder in SPIN_REORDER:
                m = [
                    one_row(res, path=path, loss=l, reorder=reorder)[
                        "median_err_pct"
                    ]
                    for l in SPIN_LOSS
                ]
                assert all(a < b for a, b in zip(m, m[1:])), (path, reorder, m)
            for loss in SPIN_LOSS:
                m = [
                    one_row(res, path=path, loss=loss, reorder=r)[
                        "median_err_pct"
                    ]
                    for r in SPIN_REORDER
                ]
                assert all(a < b for a, b in zip(m, m[1:])), (path, loss, m)

    def test_tail_degrades_monotonically_with_reordering(
        self, campaign_result
    ):
        """p90 climbs with reorder rate at every loss rate; along the
        loss axis it climbs too until reorder-split samples own the
        tail (reorder=0.3), where loss can only shuffle them."""
        res = campaign_result("spin-accuracy")
        for path in SPIN_PATHS:
            for loss in SPIN_LOSS:
                p = [
                    one_row(res, path=path, loss=loss, reorder=r)[
                        "p90_err_pct"
                    ]
                    for r in SPIN_REORDER
                ]
                assert all(a < b for a, b in zip(p, p[1:])), (path, loss, p)
            for reorder in SPIN_REORDER[:-1]:
                p = [
                    one_row(res, path=path, loss=l, reorder=reorder)[
                        "p90_err_pct"
                    ]
                    for l in SPIN_LOSS
                ]
                assert all(a < b for a, b in zip(p, p[1:])), (path, reorder, p)

    def test_reordering_is_the_harsher_impairment_on_p90(
        self, campaign_result
    ):
        """At every matched rate x, p90(reorder=x) > p90(loss=x): a
        spurious edge splits a whole spin period, a lost edge only
        stretches one."""
        res = campaign_result("spin-accuracy")
        for path in SPIN_PATHS:
            for x in (0.1, 0.3):
                ro = one_row(res, path=path, loss=0.0, reorder=x)
                lo = one_row(res, path=path, loss=x, reorder=0.0)
                assert ro["p90_err_pct"] > lo["p90_err_pct"], (path, x)

    def test_spurious_edges_grow_the_sample_count(self, campaign_result):
        """Reordering manufactures edges (one split per straggler), so
        the recovered-sample count rises with the reorder rate; loss
        only moves edges, so it cannot create them."""
        res = campaign_result("spin-accuracy")
        for path in SPIN_PATHS:
            for loss in SPIN_LOSS:
                e = [
                    one_row(res, path=path, loss=loss, reorder=r)["edges"]
                    for r in SPIN_REORDER
                ]
                assert all(a < b for a, b in zip(e, e[1:])), (path, loss, e)
