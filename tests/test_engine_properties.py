"""Property-based tests of the event engine and max-min invariants."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.engine import Engine


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=60))
def test_events_always_fire_in_time_order(times):
    eng = Engine()
    fired = []
    for t in times:
        eng.schedule(t, lambda t=t: fired.append(t))
    eng.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)


@given(st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1,
                max_size=40))
def test_clock_is_monotonic(delays):
    eng = Engine()
    observed = []

    def chain(remaining):
        observed.append(eng.now)
        if remaining:
            eng.call_in(remaining[0], lambda: chain(remaining[1:]))

    eng.schedule(0.0, lambda: chain(delays))
    eng.run()
    assert observed == sorted(observed)
    assert eng.now == sum(delays)  # total elapsed matches the chain


@given(
    st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                       st.integers(min_value=0, max_value=5)),
             min_size=2, max_size=40)
)
def test_priority_within_same_time(items):
    """At identical times, lower priority values run first."""
    eng = Engine()
    fired = []
    for t, prio in items:
        eng.schedule(t, lambda t=t, p=prio: fired.append((t, p)), priority=prio)
    eng.run()
    assert fired == sorted(fired, key=lambda x: (x[0], x[1]))


@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
def test_cancellation_exactness(n_keep, n_cancel):
    eng = Engine()
    fired = []
    keep = [eng.schedule(float(i), lambda i=i: fired.append(i)) for i in range(n_keep)]
    cancel = [
        eng.schedule(1000.0 + i, lambda: fired.append(-1)) for i in range(n_cancel)
    ]
    for ev in cancel:
        ev.cancel()
    eng.run()
    assert len(fired) == n_keep
    assert -1 not in fired
