"""Discrete-event engine semantics."""

from __future__ import annotations

import pytest

from repro.core.engine import Engine
from repro.core.errors import SimulationError


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = Engine()
        log = []
        eng.schedule(2.0, lambda: log.append("b"))
        eng.schedule(1.0, lambda: log.append("a"))
        eng.schedule(3.0, lambda: log.append("c"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        eng = Engine()
        log = []
        for name in "abc":
            eng.schedule(1.0, lambda n=name: log.append(n))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_priority_beats_schedule_order(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, lambda: log.append("low"), priority=5)
        eng.schedule(1.0, lambda: log.append("high"), priority=0)
        eng.run()
        assert log == ["high", "low"]

    def test_call_in_relative(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: eng.call_in(2.5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [7.5]

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule(0.5, lambda: None)

    def test_nan_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule(float("nan"), lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.call_in(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = Engine()
        log = []
        ev = eng.schedule(1.0, lambda: log.append("x"))
        ev.cancel()
        eng.run()
        assert log == []

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        ev = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending == 2
        ev.cancel()
        assert eng.pending == 1


class TestRunControl:
    def test_run_until_advances_clock(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.run(until=5.0)
        assert eng.now == 5.0
        assert eng.pending == 1
        eng.run()
        assert eng.now == 10.0

    def test_run_resumes_seamlessly(self):
        eng = Engine()
        log = []
        eng.schedule(3.0, lambda: log.append(eng.now))
        eng.run(until=1.0)
        eng.run(until=4.0)
        assert log == [3.0]

    def test_max_events_guard(self):
        eng = Engine()

        def reschedule():
            eng.call_in(0.1, reschedule)

        eng.schedule(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            eng.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_not_reentrant(self):
        eng = Engine()
        errors = []

        def nested():
            try:
                eng.run()
            except SimulationError as exc:
                errors.append(exc)

        eng.schedule(1.0, nested)
        eng.run()
        assert len(errors) == 1

    def test_reset(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.reset()
        assert eng.now == 0.0 and eng.pending == 0
        eng.schedule(0.5, lambda: None)  # past is legal again
        eng.run()
        assert eng.now == 0.5

    def test_processed_counter(self):
        eng = Engine()
        for i in range(5):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.processed == 5
