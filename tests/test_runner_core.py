"""The pure scheduling core, pinned to the pre-split scheduler.

The refactor that produced :mod:`repro.runner.core` and
:mod:`repro.runner.transport` must not change a single scheduling
decision: which slots the cache serves, what order pending work is
submitted in, how attempts are charged, when a campaign gives up, and
exactly how long each retry round backs off.  These tests replay the
pre-split ``_run_pool`` loop as an inline "legacy model" and require
the core to agree with it across seeds, policies, crash histories, and
``jobs`` ∈ {1, 2, 4}.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import RunnerError
from repro.core.rng import RngFactory
from repro.experiments.base import ExperimentResult
from repro.runner import (
    BackoffSchedule,
    PersistentPoolTransport,
    RetryPolicy,
    RunnerConfig,
    SchedulerCore,
    TaskSpec,
    plan_campaign,
    run_tasks,
)
from repro.runner.cache import ResultCache, cache_key
from repro.runner.core import JITTER_FRACTION, JITTER_STREAM
from repro.runner.transport import InlineTransport
from repro.runner.worker import CRASH_ONCE_ENV
from repro.tools.harness import HarnessConfig
from repro.trace.bus import TraceSpec

from tests._golden import GOLDEN_CONFIG, load_golden

CFG = HarnessConfig(repetitions=2, duration=4.0, omit=1.0, tick=0.008)


# -- the legacy model ------------------------------------------------------
#
# A faithful inline replay of the decision-making of the pre-split
# scheduler's ``_run_pool`` (git history: the loop that owned attempts,
# the jitter stream, and the dead-task check before this module
# existed).  ``crash_counts[i]`` = how many times task i's worker dies
# before succeeding.


def legacy_decisions(
    exp_ids: list[str], crash_counts: list[int], policy: RetryPolicy
) -> tuple[dict[int, int], list[float]]:
    pending = list(range(len(exp_ids)))
    attempts = {i: 0 for i in pending}
    jitter_rng = RngFactory(seed=policy.seed).stream(JITTER_STREAM)
    retry_round = 0
    delays: list[float] = []
    round_no = 0
    while pending:
        for i in pending:
            attempts[i] += 1
        crashed = [i for i in pending if crash_counts[i] > round_no]
        if not crashed:
            break
        dead = [
            exp_ids[i] for i in crashed
            if attempts[i] >= policy.max_attempts
        ]
        if dead:
            raise RunnerError(
                f"worker crashed {policy.max_attempts} times running "
                f"{', '.join(sorted(set(dead)))}; giving up"
            )
        retry_round += 1
        delay = policy.backoff * 2 ** (retry_round - 1)
        delay *= 1.0 + 0.25 * float(jitter_rng.random())
        delays.append(delay)
        pending = crashed
        round_no += 1
    return attempts, delays


def core_decisions(
    exp_ids: list[str], crash_counts: list[int], policy: RetryPolicy
) -> tuple[dict[int, int], list[float]]:
    core = SchedulerCore(policy)
    pending = list(range(len(exp_ids)))
    delays: list[float] = []
    round_no = 0
    while pending:
        core.start_round(pending)
        crashed = [i for i in pending if crash_counts[i] > round_no]
        if not crashed:
            break
        delays.append(
            core.crash_delay([(i, exp_ids[i]) for i in crashed])
        )
        pending = crashed
        round_no += 1
    return {i: core.attempts(i) for i in range(len(exp_ids))}, delays


policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=5),
    backoff=st.floats(
        min_value=0.0, max_value=4.0, allow_nan=False, allow_infinity=False
    ),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)

crash_histories = st.lists(
    st.integers(min_value=0, max_value=6), min_size=1, max_size=8
)


class TestBackoffSchedule:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        backoff=st.floats(
            min_value=0.0, max_value=4.0,
            allow_nan=False, allow_infinity=False,
        ),
        rounds=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_legacy_formula(self, seed, backoff, rounds):
        schedule = BackoffSchedule(RetryPolicy(backoff=backoff, seed=seed))
        jitter_rng = RngFactory(seed=seed).stream(JITTER_STREAM)
        for retry_round in range(1, rounds + 1):
            expected = backoff * 2 ** (retry_round - 1)
            expected *= 1.0 + 0.25 * float(jitter_rng.random())
            assert schedule.next_delay() == expected

    def test_jitter_constants_are_the_legacy_ones(self):
        # The formula's magic numbers are part of the determinism
        # contract — changing either silently re-times every recorded
        # crash history.
        assert JITTER_STREAM == "runner:retry-jitter"
        assert JITTER_FRACTION == 0.25


class TestSchedulerCoreEquivalence:
    @given(policy=policies, crash_counts=crash_histories)
    @settings(max_examples=100, deadline=None)
    def test_decisions_match_legacy_model(self, policy, crash_counts):
        # Duplicate exp_ids on purpose: the give-up message sorts and
        # dedups names, and both models must agree on that too.
        exp_ids = [f"exp{i % 3}" for i in range(len(crash_counts))]
        try:
            legacy = legacy_decisions(exp_ids, crash_counts, policy)
        except RunnerError as exc:
            with pytest.raises(RunnerError) as caught:
                core_decisions(exp_ids, crash_counts, policy)
            assert str(caught.value) == str(exc)
            return
        assert core_decisions(exp_ids, crash_counts, policy) == legacy

    @given(
        policy=policies,
        crash_counts=crash_histories,
        jobs=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=50, deadline=None)
    def test_decisions_are_jobs_invariant(self, policy, crash_counts, jobs):
        # The core never sees the worker count: retry timing depends
        # only on (seed, backoff, crash rounds).  `jobs` is drawn and
        # deliberately unused by the model — this documents (and the
        # equivalence above enforces) that no decision can depend on it.
        exp_ids = [f"exp{i}" for i in range(len(crash_counts))]
        baseline = None
        outcome = None
        try:
            outcome = core_decisions(exp_ids, crash_counts, policy)
        except RunnerError as exc:
            outcome = ("error", str(exc))
        try:
            baseline = legacy_decisions(exp_ids, crash_counts, policy)
        except RunnerError as exc:
            baseline = ("error", str(exc))
        assert outcome == baseline


# -- plan_campaign against the legacy cache split --------------------------


def _fake_payload(exp_id: str) -> dict:
    result = ExperimentResult(
        exp_id=exp_id, title="T", paper_ref="Fig. 0",
        columns=["v"], rows=[{"v": 1.0}],
    )
    return {"exp_id": exp_id, "result": result.to_dict(), "elapsed": 0.0}


class TestPlanCampaign:
    @given(
        cached_mask=st.lists(st.booleans(), min_size=1, max_size=6),
        traced_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_legacy_split(self, tmp_path_factory, cached_mask,
                                  traced_mask):
        tmp_path = tmp_path_factory.mktemp("plan")
        cache = ResultCache(tmp_path)
        src = "src0"
        specs = []
        for i, is_cached in enumerate(cached_mask):
            spec = TaskSpec(
                exp_id=f"exp{i}",
                config=CFG,
                trace=TraceSpec() if traced_mask[i] else None,
            )
            specs.append(spec)
            if is_cached:
                cache.put(
                    cache_key(spec.exp_id, spec.config, src),
                    _fake_payload(spec.exp_id),
                )

        plan = plan_campaign(specs, cache, src)

        # The legacy split, inline: submission order, traced tasks
        # always execute, untraced hits serve from storage.
        legacy_cached, legacy_pending = [], []
        for index, spec in enumerate(specs):
            key = cache_key(spec.exp_id, spec.config, src)
            if spec.trace is None:
                doc = ResultCache(tmp_path).get(key)
                if doc is not None:
                    legacy_cached.append((index, doc))
                    continue
            legacy_pending.append((index, spec, key))

        assert [(i, d) for i, d in plan.cached] == legacy_cached
        assert plan.pending == legacy_pending

    def test_no_cache_means_everything_pends_with_empty_keys(self):
        specs = [TaskSpec(exp_id=f"exp{i}", config=CFG) for i in range(3)]
        plan = plan_campaign(specs, None, "")
        assert plan.cached == []
        assert plan.pending == [(i, specs[i], "") for i in range(3)]


# -- the full loop through run_tasks, transport injected -------------------


class ScriptedTransport:
    """Transport double: task *i* crashes ``crash_counts[i]`` rounds."""

    def __init__(self, crash_counts: dict[int, int]) -> None:
        self.crash_counts = dict(crash_counts)
        self.rounds: list[list[int]] = []
        self.round_no = 0
        self.closed = False

    def run_round(self, pending: list) -> tuple[dict, list]:
        self.rounds.append([index for index, _, _ in pending])
        results, crashed = {}, []
        for index, spec, key in pending:
            if self.crash_counts.get(index, 0) > self.round_no:
                crashed.append((index, spec, key))
            else:
                results[index] = _fake_payload(spec.exp_id)
        self.round_no += 1
        return results, crashed

    def close(self) -> None:
        self.closed = True


class TestRunTasksScheduleParity:
    CRASHES = {0: 2, 2: 1}  # task 0 dies twice, task 2 once, others never

    def _campaign(self, jobs: int, monkeypatch) -> tuple:
        sleeps: list[float] = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        specs = [TaskSpec(exp_id=f"exp{i}", config=CFG) for i in range(4)]
        transport = ScriptedTransport(self.CRASHES)
        report = run_tasks(
            specs,
            RunnerConfig(jobs=jobs, use_cache=False),
            transport=transport,
        )
        return report, transport, sleeps

    def test_identical_schedule_across_jobs_levels(self, monkeypatch):
        outcomes = {}
        for jobs in (1, 2, 4):
            report, transport, sleeps = self._campaign(jobs, monkeypatch)
            outcomes[jobs] = {
                "digests": [t.result.digest() for t in report.tasks],
                "attempts": [t.attempts for t in report.tasks],
                "rounds": transport.rounds,
                "sleeps": sleeps,
            }
        assert outcomes[1] == outcomes[2] == outcomes[4]
        # And the shape is the legacy one: three rounds, slots in
        # submission order, crashers re-queued in submission order.
        assert outcomes[1]["rounds"] == [[0, 1, 2, 3], [0, 2], [0]]
        assert outcomes[1]["attempts"] == [3, 1, 2, 1]

    def test_sleeps_follow_the_legacy_backoff_sequence(self, monkeypatch):
        _report, _transport, sleeps = self._campaign(2, monkeypatch)
        policy = RunnerConfig().retry_policy()
        jitter_rng = RngFactory(seed=policy.seed).stream(JITTER_STREAM)
        expected = []
        for retry_round in (1, 2):
            delay = policy.backoff * 2 ** (retry_round - 1)
            expected.append(delay * (1.0 + 0.25 * float(jitter_rng.random())))
        assert sleeps == expected

    def test_exhaustion_raises_the_legacy_message(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _d: None)
        specs = [TaskSpec(exp_id="doomed", config=CFG)]
        with pytest.raises(
            RunnerError,
            match=r"worker crashed 2 times running doomed; giving up",
        ):
            run_tasks(
                specs,
                RunnerConfig(jobs=2, use_cache=False, max_attempts=2),
                transport=ScriptedTransport({0: 99}),
            )

    def test_caller_owned_transport_stays_open(self, monkeypatch):
        monkeypatch.setattr(time, "sleep", lambda _d: None)
        transport = ScriptedTransport({})
        run_tasks(
            [TaskSpec(exp_id="exp0", config=CFG)],
            RunnerConfig(jobs=1, use_cache=False),
            transport=transport,
        )
        assert not transport.closed  # the daemon keeps its pool


# -- transports against real workers ---------------------------------------


class TestTransports:
    def test_inline_transport_runs_in_submission_order(self):
        specs = [TaskSpec(exp_id="var", config=GOLDEN_CONFIG)]
        results, crashed = InlineTransport().run_round(
            [(0, specs[0], "")]
        )
        assert crashed == []
        digest = ExperimentResult.from_dict(results[0]["result"]).digest()
        assert digest == load_golden("var")["digest"]

    def test_persistent_pool_is_reused_across_rounds(self):
        transport = PersistentPoolTransport(jobs=2)
        try:
            spec = TaskSpec(exp_id="var", config=GOLDEN_CONFIG)
            first, _ = transport.run_round([(0, spec, "")])
            pool = transport._pool
            second, _ = transport.run_round([(0, spec, "")])
            assert transport._pool is pool  # same warm pool, no rebuild
            assert transport.rebuilds == 0
            assert transport.dispatched == 2
            a = ExperimentResult.from_dict(first[0]["result"]).digest()
            b = ExperimentResult.from_dict(second[0]["result"]).digest()
            assert a == b == load_golden("var")["digest"]
        finally:
            transport.close()

    def test_persistent_pool_discards_on_crash_and_recovers(
        self, tmp_path, monkeypatch
    ):
        sentinel = tmp_path / "crashed-once"
        monkeypatch.setenv(CRASH_ONCE_ENV, f"var:{sentinel}")
        transport = PersistentPoolTransport(jobs=2)
        try:
            spec = TaskSpec(exp_id="var", config=GOLDEN_CONFIG)
            pending = [(0, spec, "")]
            results, crashed = transport.run_round(pending)
            assert sentinel.exists()  # the crash really happened
            assert results == {} and crashed == pending
            assert transport.rebuilds == 1  # broken pool discarded
            results, crashed = transport.run_round(pending)
            assert crashed == []
            digest = ExperimentResult.from_dict(
                results[0]["result"]
            ).digest()
            assert digest == load_golden("var")["digest"]
        finally:
            transport.close()

    def test_run_tasks_digest_parity_across_transports(self):
        # The acceptance invariant, at the runner level: the persistent
        # warm pool (the daemon's transport) must produce byte-identical
        # results to the inline baseline.
        specs = [TaskSpec(exp_id="var", config=GOLDEN_CONFIG)]
        inline = run_tasks(specs, RunnerConfig(jobs=1, use_cache=False))
        persistent = PersistentPoolTransport(jobs=2)
        try:
            warm = run_tasks(
                specs,
                RunnerConfig(jobs=2, use_cache=False),
                transport=persistent,
            )
        finally:
            persistent.close()
        assert (
            inline.tasks[0].result.digest()
            == warm.tasks[0].result.digest()
            == load_golden("var")["digest"]
        )
