"""Deterministic RNG factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, RngStreamCollisionError
from repro.core.rng import RngFactory, label_entropy

#: A known crc32 collision: both strings hash to 1306201125.
COLLIDING = ("plumless", "buckeroo")


class TestLabelEntropy:
    def test_stable(self):
        assert label_entropy("lossmodel") == label_entropy("lossmodel")

    def test_distinct(self):
        assert label_entropy("a") != label_entropy("b")

    def test_32bit(self):
        for label in ("", "x", "a-very-long-label-" * 10):
            assert 0 <= label_entropy(label) < 2**32


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(seed=7).stream("burst", rep=3)
        b = RngFactory(seed=7).stream("burst", rep=3)
        assert np.array_equal(a.random(100), b.random(100))

    def test_different_reps_differ(self):
        f = RngFactory(seed=7)
        a = f.stream("burst", rep=0).random(50)
        b = f.stream("burst", rep=1).random(50)
        assert not np.array_equal(a, b)

    def test_different_labels_differ(self):
        f = RngFactory(seed=7)
        a = f.stream("burst").random(50)
        b = f.stream("background").random(50)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(seed=1).stream("x").random(50)
        b = RngFactory(seed=2).stream("x").random(50)
        assert not np.array_equal(a, b)

    def test_stream_cached(self):
        f = RngFactory(seed=7)
        assert f.stream("x", 0) is f.stream("x", 0)

    def test_fork_disjoint(self):
        f = RngFactory(seed=7)
        g = f.fork("hostA")
        a = f.stream("x").random(50)
        b = g.stream("x").random(50)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        a = RngFactory(seed=7).fork("hostA").stream("x").random(20)
        b = RngFactory(seed=7).fork("hostA").stream("x").random(20)
        assert np.array_equal(a, b)

    def test_streams_statistically_reasonable(self):
        r = RngFactory(seed=0).stream("uniform")
        sample = r.random(10000)
        assert 0.48 < sample.mean() < 0.52


class TestCollisionDetection:
    """crc32 label collisions must raise, never silently share a stream."""

    def test_colliding_pair_really_collides(self):
        a, b = COLLIDING
        assert a != b
        assert label_entropy(a) == label_entropy(b)

    def test_stream_collision_raises(self):
        f = RngFactory(seed=1)
        f.stream(COLLIDING[0])
        with pytest.raises(RngStreamCollisionError) as exc:
            f.stream(COLLIDING[1])
        assert COLLIDING[0] in str(exc.value)
        assert COLLIDING[1] in str(exc.value)

    def test_same_label_never_collides_with_itself(self):
        f = RngFactory(seed=1)
        f.stream("burst", rep=0)
        f.stream("burst", rep=7)
        f.stream("burst", rep=0)  # cached path, still fine

    def test_fork_collision_raises(self):
        f = RngFactory(seed=1)
        f.fork(COLLIDING[0])
        with pytest.raises(RngStreamCollisionError):
            f.fork(COLLIDING[1])

    def test_fork_and_stream_namespaces_are_independent(self):
        # The same label used for a fork and a stream is not a collision.
        f = RngFactory(seed=1)
        f.stream(COLLIDING[0])
        f.fork(COLLIDING[0])

    def test_collision_is_configuration_error(self):
        assert issubclass(RngStreamCollisionError, ConfigurationError)

    def test_fresh_factories_do_not_share_state(self):
        RngFactory(seed=1).stream(COLLIDING[0])
        RngFactory(seed=1).stream(COLLIDING[1])  # different factory: fine
