"""The streaming trace pipeline: JSONL spill, re-read, export, diff.

Locks down the four contracts the streaming layer adds on top of PR-3's
in-memory trace subsystem:

* **bounded memory** — :class:`JsonlSink` holds at most ``flush_every``
  events resident however long the stream, asserted via its
  ``peak_buffered`` high-water counter (the acceptance criterion);
* **crash tolerance** — a stream truncated mid-line (kill-mid-write) or
  missing its finalize record re-reads cleanly, serving every complete
  event before the truncation point;
* **byte identity** — the streaming Perfetto/CSV exporters produce the
  exact bytes of their in-memory counterparts on the same stream;
* **diff** — ``repro trace --diff`` pinpoints the first divergent
  event (index, seq, fields, both values) and summarizes digests and
  counts for identical, divergent, truncated, and Perfetto inputs.
"""

from __future__ import annotations

import csv
import io
import json
import math

import pytest

from repro.core.errors import SimulationError
from repro.trace import (
    JsonlSink,
    TraceBus,
    TraceEvent,
    TraceSpec,
    diff_event_streams,
    diff_files,
    dump_perfetto,
    events_digest,
    inflight_bytes,
    iter_stream_events,
    read_stream_header,
    stream_csv,
    stream_perfetto,
    stream_summary,
    to_csv,
    to_perfetto,
    validate_perfetto,
)
from repro.trace import bus as trace_bus


@pytest.fixture(autouse=True)
def _no_leaked_bus():
    yield
    trace_bus.uninstall()


def write_stream(path, n=10, flush_every=4, mutate=None, args_extra=None):
    """A small deterministic stream; ``mutate(i, args)`` can perturb it."""
    sink = JsonlSink(path, flush_every=flush_every, meta={"exp_id": "figX"})
    bus = TraceBus(sinks=[sink])
    for i in range(n):
        bus.set_time(i * 0.25)
        args = {"flow": i % 2, "cwnd": 1e5 + i}
        if args_extra:
            args.update(args_extra)
        if mutate:
            mutate(i, args)
        bus.emit("cc", "cc.loss", **args)
    sink.finalize()
    return sink


class TestJsonlSink:
    def test_header_events_finalize_layout(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        write_stream(p, n=3)
        lines = p.read_text().splitlines()
        assert len(lines) == 5  # header + 3 events + end
        header, end = json.loads(lines[0]), json.loads(lines[-1])
        assert header["kind"] == "header" and header["meta"]["exp_id"] == "figX"
        assert end["kind"] == "end" and end["count"] == 3
        assert json.loads(lines[1])["seq"] == 0

    def test_incremental_digest_matches_events_digest(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        sink = write_stream(p)
        events = list(iter_stream_events(p))
        assert len(events) == 10
        assert events_digest(events) == sink.digest()

    def test_peak_buffered_is_bounded_by_flush_batch(self, tmp_path):
        # The acceptance criterion: resident event memory is O(1) in
        # event count — the high-water mark never exceeds the batch
        # size however many events the run emits.
        p = tmp_path / "a.trace.jsonl"
        sink = write_stream(p, n=500, flush_every=8)
        assert sink.written == 500
        assert sink.peak_buffered <= 8

    def test_category_filtering(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        sink = JsonlSink(p, categories=("cc",))
        bus = TraceBus(sinks=[sink])
        bus.emit("cc", "cc.loss", flow=0)
        bus.emit("probe", "probe.nic", q=1)
        sink.finalize()
        assert [e["name"] for e in iter_stream_events(p)] == ["cc.loss"]

    def test_finalize_idempotent_and_write_after_close_rejected(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        sink = write_stream(p, n=2)
        sink.finalize()  # second call is a no-op
        assert sum(1 for ln in p.read_text().splitlines()
                   if '"kind":"end"' in ln) == 1
        with pytest.raises(SimulationError, match="finalized"):
            sink.write(TraceEvent(99, 0.0, "cc", "cc.loss"))

    def test_context_manager_finalizes(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        with JsonlSink(p) as sink:
            bus = TraceBus(sinks=[sink])
            bus.emit("cc", "cc.loss", flow=0)
        assert stream_summary(p).finalized

    def test_spec_spill_mode_builds_jsonl_sink(self, tmp_path):
        spec = TraceSpec(spill_dir=str(tmp_path))
        sink = spec.make_sink(stem="stem")
        assert isinstance(sink, JsonlSink)
        assert sink.path == tmp_path / "stem.trace.jsonl"
        sink.finalize()
        with pytest.raises(SimulationError, match="artifact stem"):
            spec.make_sink()

    def test_spec_spill_and_buffer_mutually_exclusive(self, tmp_path):
        with pytest.raises(SimulationError, match="mutually exclusive"):
            TraceSpec(buffer=16, spill_dir=str(tmp_path))

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(SimulationError, match="flush_every"):
            JsonlSink(tmp_path / "x.jsonl", flush_every=0)


class TestTolerantReread:
    def test_unfinalized_stream_reads_fully(self, tmp_path):
        # Crash before finalize: all flushed events survive, stream is
        # marked unfinalized.
        p = tmp_path / "a.trace.jsonl"
        sink = JsonlSink(p, flush_every=1)
        bus = TraceBus(sinks=[sink])
        for i in range(5):
            bus.emit("cc", "cc.loss", flow=i)
        # no finalize(): simulate a dead worker (file handle leaks, but
        # every line was flushed)
        info = stream_summary(p)
        assert info.count == 5 and not info.finalized and info.end is None
        sink.finalize()

    def test_kill_mid_write_partial_line_tolerated(self, tmp_path):
        # Truncate the file mid-way through an event line: the partial
        # tail is dropped, every complete event before it is served.
        p = tmp_path / "a.trace.jsonl"
        write_stream(p, n=10, flush_every=1)
        full = p.read_text().splitlines()
        cut = tmp_path / "cut.trace.jsonl"
        # keep header + 6 complete events + half of the 7th line
        cut.write_text("\n".join(full[:7]) + "\n" + full[7][: len(full[7]) // 2])
        events = list(iter_stream_events(cut))
        assert [e["seq"] for e in events] == list(range(6))
        info = stream_summary(cut)
        assert info.count == 6 and not info.finalized

    def test_finalize_record_consistency_check(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        write_stream(p, n=4)
        assert stream_summary(p).consistent
        # forge the end record's count: scan disagrees
        lines = p.read_text().splitlines()
        end = json.loads(lines[-1])
        end["count"] = 999
        forged = tmp_path / "forged.trace.jsonl"
        forged.write_text("\n".join(lines[:-1] + [json.dumps(end)]) + "\n")
        info = stream_summary(forged)
        assert info.finalized and not info.consistent

    def test_headerless_file_rejected(self, tmp_path):
        p = tmp_path / "bogus.jsonl"
        p.write_text('{"seq": 0}\n')
        with pytest.raises(SimulationError, match="header"):
            list(iter_stream_events(p))

    def test_non_json_file_rejected(self, tmp_path):
        p = tmp_path / "bogus.txt"
        p.write_text("not a trace\n")
        with pytest.raises(SimulationError, match="not a JSONL trace"):
            read_stream_header(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.jsonl"
        p.write_text("")
        with pytest.raises(SimulationError, match="empty"):
            list(iter_stream_events(p))

    def test_wrong_format_version_rejected(self, tmp_path):
        p = tmp_path / "future.jsonl"
        p.write_text('{"kind": "header", "format": 999}\n')
        with pytest.raises(SimulationError, match="format"):
            list(iter_stream_events(p))


class TestStreamingExportByteIdentity:
    def test_perfetto_streamed_equals_in_memory(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        write_stream(p, n=25)
        events = list(iter_stream_events(p))
        meta = {"exp_id": "figX", "task": "t", "dropped": 0, "emitted": 25}
        out = tmp_path / "streamed.trace.json"
        stream_perfetto(p, out, meta=meta)
        in_memory = dump_perfetto(to_perfetto(events, meta=meta))
        assert out.read_text() == in_memory
        assert validate_perfetto(json.loads(out.read_text())) == []

    def test_perfetto_streamed_empty_stream(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        JsonlSink(p).finalize()
        out = tmp_path / "out.json"
        stream_perfetto(p, out)
        assert out.read_text() == dump_perfetto(to_perfetto([]))

    def test_csv_streamed_equals_in_memory(self, tmp_path):
        p = tmp_path / "a.trace.jsonl"
        write_stream(p, n=25, args_extra={"why": 'quote " comma, done'})
        out = tmp_path / "a.csv"
        stream_csv(p, out)
        assert out.read_text() == to_csv(list(iter_stream_events(p)))

    def test_ledger_counter_tracks_for_flow_ticks(self, tmp_path):
        event = TraceEvent(
            0, 0.5, "flow", "flow.tick",
            args={"flow": 1, "sent": 1000.0, "delivered": 900.0,
                  "dropped": 100.0, "alloc": 2e6, "cwnd": 1.5e5,
                  "rtt": 0.05},
        )
        doc = to_perfetto([event])
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [c["name"] for c in counters] == ["ledger.inflight/flow1"]
        assert counters[0]["args"] == {
            "cwnd": 1.5e5,
            "inflight": inflight_bytes(2e6, 0.05),
        }
        assert counters[0]["args"]["inflight"] == pytest.approx(1e5)
        assert validate_perfetto(doc) == []


class TestCsvQuoting:
    """The RFC-4180 regression: quotes, commas, newlines in any field."""

    def stream(self):
        return [
            TraceEvent(0, 0.0, "run", "run.start", track='tr "q", x',
                       args={"label": 'say "hi", then\nnewline',
                             "n": 3, "ok": True, "skip": None}),
            TraceEvent(1, 0.5, "cc", "cc.loss", track="plain",
                       args={"label": "plain", "n": 1.5, "ok": False}),
        ]

    def test_round_trips_through_csv_reader(self):
        rows = list(csv.reader(io.StringIO(to_csv(self.stream()))))
        header = rows[0]
        assert header[:5] == ["seq", "t", "cat", "name", "track"]
        first = dict(zip(header, rows[1]))
        assert first["track"] == 'tr "q", x'
        assert first["label"] == 'say "hi", then\nnewline'
        assert first["n"] == "3" and first["ok"] == "true"
        assert first["skip"] == ""
        second = dict(zip(header, rows[2]))
        assert second["n"] == "1.5" and second["ok"] == "false"
        assert len(rows) == 3

    def test_plain_values_stay_unquoted(self):
        text = to_csv(self.stream())
        # row 1 spans two physical lines (quoted newline), so the plain
        # second record is the 4th line of the file
        line = text.splitlines()[3]
        assert line == "1,0.500000000,cc,cc.loss,plain,plain,1.5,false,"


class TestDiff:
    def streams(self, tmp_path, mutate=None, n=8):
        a, b = tmp_path / "a.trace.jsonl", tmp_path / "b.trace.jsonl"
        write_stream(a, n=n)
        write_stream(b, n=n, mutate=mutate)
        return a, b

    def test_identical(self, tmp_path):
        a, b = self.streams(tmp_path)
        diff = diff_files(a, b)
        assert diff.identical
        assert diff.count_a == diff.count_b == 8
        assert diff.digest_a == diff.digest_b
        assert "traces identical" in diff.render()

    def test_first_divergent_event_pinpointed(self, tmp_path):
        def mutate(i, args):
            if i >= 5:
                args["cwnd"] += 7.0

        a, b = self.streams(tmp_path, mutate=mutate)
        diff = diff_files(a, b)
        assert not diff.identical
        assert diff.index == 5 and diff.seq_a == 5 and diff.seq_b == 5
        assert [(f.field, f.a, f.b) for f in diff.fields] == [
            ("args.cwnd", 1e5 + 5, 1e5 + 12),
        ]
        text = diff.render()
        assert "first divergence at event index 5" in text
        assert "args.cwnd" in text and "100005.0" in text and "100012.0" in text

    def test_length_mismatch_reported(self, tmp_path):
        a = tmp_path / "a.trace.jsonl"
        b = tmp_path / "b.trace.jsonl"
        write_stream(a, n=8)
        write_stream(b, n=6)
        diff = diff_files(a, b)
        assert not diff.identical
        assert diff.index == 6 and diff.seq_b is None
        assert "stream B ended here" in diff.render()
        assert diff.count_a == 8 and diff.count_b == 6

    def test_diff_consumes_streams_not_lists(self, tmp_path):
        # API-level: generators work, both streams drain to the end so
        # counts/digests cover the whole file even after divergence.
        def gen(vals):
            for i, v in enumerate(vals):
                yield {"seq": i, "v": v}

        diff = diff_event_streams(gen([1, 2, 3, 4]), gen([1, 9, 3, 5]))
        assert diff.index == 1
        assert diff.fields == tuple([type(diff.fields[0])("v", 2, 9)])
        assert diff.count_a == diff.count_b == 4

    def test_perfetto_artifacts_diff_too(self, tmp_path):
        a, b = self.streams(
            tmp_path, mutate=lambda i, args: args.update(flow=9) if i == 2 else None
        )
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        stream_perfetto(a, pa)
        stream_perfetto(b, pb)
        diff = diff_files(pa, pb)
        assert not diff.identical
        assert any(f.field == "args.flow" for f in diff.fields)
        assert diff_files(pa, pa).identical

    def test_missing_file_errors(self, tmp_path):
        a = tmp_path / "a.trace.jsonl"
        write_stream(a, n=2)
        with pytest.raises(SimulationError, match="no such trace artifact"):
            diff_files(a, tmp_path / "nope.jsonl")


class TestEmitEdgeNaN:
    """Regression: a NaN edge value must not re-fire every observation."""

    def test_nan_is_one_edge_not_many(self):
        from repro.trace import ListSink

        sink = ListSink()
        bus = TraceBus(sinks=[sink])
        nan = float("nan")
        assert bus.emit_edge("k", "cc", "cc.rate", nan) is not None  # first
        # repeated NaN observations (fresh objects included) are silent
        assert bus.emit_edge("k", "cc", "cc.rate", float("nan")) is None
        assert bus.emit_edge("k", "cc", "cc.rate", math.nan) is None
        # leaving and re-entering NaN are both edges
        assert bus.emit_edge("k", "cc", "cc.rate", 1.0) is not None
        assert bus.emit_edge("k", "cc", "cc.rate", float("nan")) is not None
        assert len(sink.events) == 3

    def test_plain_values_unaffected(self):
        from repro.trace import ListSink

        sink = ListSink()
        bus = TraceBus(sinks=[sink])
        assert bus.emit_edge("k", "cc", "x", 1.0) is not None
        assert bus.emit_edge("k", "cc", "x", 1.0) is None
        assert bus.emit_edge("k", "cc", "x", 2.0) is not None
