"""Tuning advisor: the paper's recommendations as API."""

from __future__ import annotations

import pytest

from repro.core import units
from repro.host.advisor import advise, recommended_optmem, recommended_pacing_gbps
from repro.host.sysctl import OPTMEM_1MB
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.testbeds.profiles import stock_host


class TestOptmemSizing:
    def test_floor_is_1mb(self):
        assert recommended_optmem(rate_gbps=10, rtt_sec=0.001) == OPTMEM_1MB

    def test_104ms_at_50g_needs_over_3mb(self):
        rec = recommended_optmem(rate_gbps=50, rtt_sec=0.104)
        assert rec > 3.4e6  # the paper's 3.25MB plus headroom

    def test_scales_with_bdp(self):
        a = recommended_optmem(50, 0.054)
        b = recommended_optmem(50, 0.104)
        assert b > a

    def test_recommendation_actually_works(self):
        """Closing the loop: the recommended value reaches the pacing
        rate in the simulator (the ext-optmem experiment's core)."""
        from repro.core.rng import RngFactory
        from repro.tools.iperf3 import Iperf3, Iperf3Options

        rec = recommended_optmem(50, 0.104)
        tb = AmLightTestbed(kernel="6.5", optmem_max=rec)
        snd, rcv = tb.host_pair()
        res = Iperf3(snd, rcv, tb.path("wan104"), rng=RngFactory(1), tick=0.004).run(
            Iperf3Options(duration=10, omit=3, zerocopy="z", fq_rate_gbps=50,
                          skip_rx_copy=True)
        )
        assert res.gbps == pytest.approx(50, rel=0.05)


class TestPacingHeuristic:
    def test_eight_streams_on_esnet_wan(self):
        path = ESnetTestbed().path("wan")
        pace = recommended_pacing_gbps(path, streams=8, nic_gbps=200)
        assert 15 <= pace <= 25  # paper recommends 15-25 here

    def test_single_stream_amlight_wan(self):
        path = AmLightTestbed().path("wan54")
        pace = recommended_pacing_gbps(path, streams=1, nic_gbps=100)
        assert 45 <= pace <= 60  # paper used 50

    def test_more_streams_lower_rate(self):
        path = ESnetTestbed().path("wan")
        assert recommended_pacing_gbps(path, 16, 200) < recommended_pacing_gbps(path, 4, 200)


class TestAdvise:
    def test_stock_host_gets_required_items(self):
        host = stock_host("h", cpu="intel", nic="cx5", kernel="5.15")
        report = advise(host, AmLightTestbed().path("wan54"))
        required = {i.key for i in report.items if i.severity == "required"}
        assert any("tcp_wmem" in k for k in required)
        assert "net.core.default_qdisc" in required
        assert "irqbalance + core pinning" in required
        assert "kernel cmdline" in required  # iommu=pt
        # stock 5.15 also gets the upgrade recommendation
        assert any(i.key == "kernel upgrade" for i in report.items)

    def test_tuned_host_mostly_clean(self):
        snd, _ = AmLightTestbed(kernel="6.8").host_pair()
        report = advise(snd, AmLightTestbed().path("wan25"))
        required = [i for i in report.items if i.severity == "required"]
        # only the pacing requirement remains (no flow control on path)
        assert all("fq-rate" in i.key or "iperf3" in i.key for i in required)

    def test_long_path_triggers_optmem_advice(self):
        snd, _ = AmLightTestbed(kernel="6.8").host_pair()  # 1 MB optmem
        report = advise(snd, AmLightTestbed().path("wan104"), target_gbps=50)
        item = report.by_key("net.core.optmem_max")
        assert int(item.value) > 3_000_000

    def test_flow_control_path_pacing_optional(self):
        tb = ESnetTestbed()
        snd, _ = tb.production_host_pair()
        report = advise(snd, tb.production_path(), streams=8)
        item = report.by_key("--fq-rate (per stream)")
        assert item.severity == "optional"

    def test_pacing_above_34g_requires_patched_tool(self):
        snd, _ = AmLightTestbed(kernel="6.8").host_pair()
        report = advise(snd, AmLightTestbed().path("wan54"), target_gbps=50)
        assert any("PR#1728" in i.value for i in report.items)

    def test_bigtcp_conflict_flagged(self):
        tb = AmLightTestbed(kernel="6.8", big_tcp_size=153600)
        snd, _ = tb.host_pair()
        report = advise(snd, tb.path("wan54"))
        item = report.by_key("BIG TCP + MSG_ZEROCOPY")
        assert item.severity == "required"

    def test_render(self):
        host = stock_host("h", cpu="amd", nic="cx7", kernel="5.15")
        text = advise(host, ESnetTestbed().path("wan")).render()
        assert "Tuning advice" in text and "[required" in text
