"""Testbed factories: AmLight, ESnet, production DTNs."""

from __future__ import annotations

import pytest

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.testbeds.amlight import AMLIGHT_RTTS_MS, AmLightTestbed
from repro.testbeds.esnet import ESNET_WAN_RTT_MS, ESnetTestbed


class TestAmLight:
    def test_paths_match_paper_rtts(self):
        tb = AmLightTestbed()
        for name, rtt_ms in AMLIGHT_RTTS_MS.items():
            assert tb.path(name).rtt_ms == pytest.approx(rtt_ms, abs=0.5)

    def test_wan_paths_admin_capped_at_80g(self):
        tb = AmLightTestbed()
        for name in ("wan25", "wan54", "wan104"):
            assert tb.path(name).capacity == pytest.approx(units.gbps(80))
        assert tb.path("lan").capacity == pytest.approx(units.gbps(100))

    def test_wan_background_16g(self):
        tb = AmLightTestbed()
        assert units.to_gbps(tb.path("wan54").background.mean_bytes_per_sec) == pytest.approx(16)
        assert not tb.path("lan").background.active

    def test_hosts_are_intel_cx5(self):
        snd, rcv = AmLightTestbed().host_pair()
        assert snd.cpu.arch == "intel"
        assert "ConnectX-5" in snd.nic.model
        assert snd.tuning.mtu == 9000

    def test_vm_modes(self):
        assert AmLightTestbed(vm_mode="baremetal").host_pair()[0].vm.enabled is False
        assert AmLightTestbed(vm_mode="tuned").host_pair()[0].vm.pci_passthrough
        assert AmLightTestbed(vm_mode="untuned").host_pair()[0].vm.enabled
        with pytest.raises(ConfigurationError):
            AmLightTestbed(vm_mode="container").host_pair()

    def test_unknown_path(self):
        with pytest.raises(ConfigurationError):
            AmLightTestbed().path("wan999")

    def test_no_flow_control_anywhere(self):
        tb = AmLightTestbed()
        assert all(not p.flow_control for p in tb.paths())

    def test_big_tcp_size_propagates(self):
        tb = AmLightTestbed(big_tcp_size=153600)
        snd, _ = tb.host_pair()
        assert snd.effective_gso_size() == 153600


class TestESnet:
    def test_paths(self):
        tb = ESnetTestbed()
        assert tb.path("lan").capacity == pytest.approx(units.gbps(200))
        assert tb.path("wan").rtt_ms == pytest.approx(ESNET_WAN_RTT_MS, abs=0.5)

    def test_hosts_are_amd_cx7(self):
        snd, _ = ESnetTestbed().host_pair()
        assert snd.cpu.arch == "amd"
        assert "ConnectX-7" in snd.nic.model

    def test_switch_is_64mb_edgecore(self):
        tb = ESnetTestbed()
        assert tb.path("lan").switch.shared_buffer_bytes == pytest.approx(64 * units.MB)
        assert not tb.path("lan").switch.supports_flow_control

    def test_production_pair_100g_with_fc(self):
        tb = ESnetTestbed()
        snd, rcv = tb.production_host_pair()
        assert snd.nic.speed_gbps == pytest.approx(100.0)
        path = tb.production_path()
        assert path.flow_control
        assert path.rtt_ms == pytest.approx(63.0, abs=0.5)
        assert path.background.active

    def test_unknown_path(self):
        with pytest.raises(ConfigurationError):
            ESnetTestbed().path("metro")
